package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/feedback"
	"repro/internal/obs"
	"repro/internal/selector"
	"repro/internal/sparse"
)

// Shadow deployment: the shepherd's candidate model rides inside the
// live server as a mirror. Sampled predict traffic is re-run through
// the shadow *after* the live answer has been delivered, so the shadow
// influences metrics and its scorecard only — never a response, never
// the cache, never the breaker. The scorecard (agreement with the live
// model, error count, forward latency) is what the promotion gate
// reads; loading a shadow goes through the same checksummed-envelope
// loader and probe prediction as a live reload, so a corrupt retrain
// artifact is rejected at the door.

// shadowState is the atomically-swapped shadow slot.
type shadowState struct {
	sel  *selector.Selector
	path string

	samples  atomic.Int64
	agree    atomic.Int64
	disagree atomic.Int64
	errs     atomic.Int64
	shadowNs atomic.Int64
	liveNs   atomic.Int64
}

// LoadShadow validates the artifact at path (checksummed envelope +
// probe prediction, exactly like a live reload) and installs it as the
// shadow model with a fresh scorecard. A rejected artifact leaves any
// current shadow untouched.
func (s *Server) LoadShadow(path string) error {
	sel, err := selector.LoadFile(path)
	if err == nil {
		if perr := probe(sel); perr != nil {
			err = perr
		}
	}
	if err != nil {
		s.met.shadowRejects.Inc()
		s.logf("serve: shadow load rejected: %v", err)
		return fmt.Errorf("serve: shadow load: %w", err)
	}
	s.shadow.Store(&shadowState{sel: sel, path: path})
	s.met.shadowLoads.Inc()
	s.met.shadowLoaded.Set(1)
	s.logf("serve: shadow model loaded from %s", path)
	return nil
}

// ClearShadow unloads the shadow model (no-op when none is loaded).
func (s *Server) ClearShadow() {
	if s.shadow.Swap(nil) != nil {
		s.met.shadowLoaded.Set(0)
		s.logf("serve: shadow model cleared")
	}
}

// ShadowScorecard snapshots the mirror's agreement/latency scorecard.
func (s *Server) ShadowScorecard() feedback.ShadowScorecard {
	st := s.shadow.Load()
	if st == nil {
		return feedback.ShadowScorecard{}
	}
	card := feedback.ShadowScorecard{
		Loaded:   true,
		Path:     st.path,
		Samples:  int(st.samples.Load()),
		Agree:    int(st.agree.Load()),
		Disagree: int(st.disagree.Load()),
		Errors:   int(st.errs.Load()),
	}
	if judged := card.Agree + card.Disagree; judged > 0 {
		card.AgreeRate = float64(card.Agree) / float64(judged)
	}
	if card.Samples > 0 {
		card.ShadowMean = time.Duration(st.shadowNs.Load() / int64(card.Samples)).Seconds()
		card.LiveMean = time.Duration(st.liveNs.Load() / int64(card.Samples)).Seconds()
	}
	return card
}

// shadowSample is one mirrored prediction, queued during a batch and
// run after every response in the batch has been answered.
type shadowSample struct {
	m      *sparse.COO
	live   selector.Prediction
	liveNs int64
}

// shouldShadow reports whether this prediction falls in the mirror's
// sample (every ShadowSampleN-th request; 0 disables, 1 mirrors all).
func (s *Server) shouldShadow() bool {
	if s.cfg.ShadowSampleN <= 0 || s.shadow.Load() == nil {
		return false
	}
	return s.shadowSeq.Add(1)%uint64(s.cfg.ShadowSampleN) == 0
}

// mirrorShadow re-runs sampled predictions through the shadow model.
// It executes on the batch worker after every job in the batch has been
// answered: the responses are gone, so nothing here can affect them.
// The forward pass is bounded by PredictTimeout and panic-contained —
// a pathological shadow burns its budget and scores an error, nothing
// more.
func (s *Server) mirrorShadow(samples []shadowSample) {
	st := s.shadow.Load()
	if st == nil {
		return
	}
	for _, sm := range samples {
		st.samples.Add(1)
		st.liveNs.Add(sm.liveNs)
		s.met.shadowRequests.Inc()
		start := time.Now()
		pred, err := s.shadowOnce(st.sel, sm.m)
		elapsed := time.Since(start)
		st.shadowNs.Add(elapsed.Nanoseconds())
		s.met.shadowSeconds.Observe(elapsed.Seconds())
		if err != nil {
			st.errs.Add(1)
			s.met.shadowErrors.Inc()
			s.logf("serve: shadow predict failed: %v", err)
			continue
		}
		// Agreement is judged on healthy live answers only: comparing
		// against a degraded (dtree/CSR) answer would score the shadow
		// against the wrong reference.
		if sm.live.FellBack {
			continue
		}
		if pred.Format == sm.live.Format {
			st.agree.Add(1)
			s.met.shadowAgree.Inc()
		} else {
			st.disagree.Add(1)
			s.met.shadowDisagree.Inc()
		}
	}
}

// shadowOnce runs one shadow inference with its own timeout and panic
// containment. It deliberately does not share cnnOnce: the shadow must
// not trip fault-injection points, the breaker, or request tracing —
// it is invisible to the serving path.
func (s *Server) shadowOnce(sel *selector.Selector, m *sparse.COO) (selector.Prediction, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PredictTimeout)
	defer cancel()
	ch := make(chan cnnOut, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- cnnOut{err: fmt.Errorf("serve: shadow predict panic: %v", r)}
			}
		}()
		f, probs, err := sel.Predict(m)
		if err != nil {
			ch <- cnnOut{err: err}
			return
		}
		ch <- cnnOut{pred: selector.Prediction{Format: f, Probs: probs}}
	}()
	select {
	case out := <-ch:
		return out.pred, out.err
	case <-ctx.Done():
		return selector.Prediction{}, fmt.Errorf("serve: shadow predict: %w", ctx.Err())
	}
}

// AdminHandler returns the introspection surface for a separate admin
// listener: /metrics, /debug/traces, /debug/pprof, and the shadow
// control endpoints the shepherd drives (POST /shadow/load, POST
// /shadow/clear, GET /shadow/scorecard). It is never mounted on the
// traffic handler — pprof on a public port is an information leak and
// a DoS lever, and shadow control is an operator surface.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.AdminHandler(obs.AdminConfig{
		Registry: s.met.reg,
		Traces:   s.traces,
		PProf:    true,
	}))
	mux.HandleFunc("/shadow/load", s.handleShadowLoad)
	mux.HandleFunc("/shadow/clear", s.handleShadowClear)
	mux.HandleFunc("/shadow/scorecard", s.handleShadowScorecard)
	return mux
}

func (s *Server) handleShadowLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Path == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be {\"path\": \"...\"}"})
		return
	}
	if err := s.LoadShadow(req.Path); err != nil {
		// 422: the request was well-formed; the artifact was not.
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.ShadowScorecard())
}

func (s *Server) handleShadowClear(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	s.ClearShadow()
	writeJSON(w, http.StatusOK, s.ShadowScorecard())
}

func (s *Server) handleShadowScorecard(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ShadowScorecard())
}
