package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// preRefactorMetricNames is the frozen contract: every metric the serve
// package exposed before the obs refactor must still appear on /metrics.
// Do not remove entries from this list — renames break dashboards.
var preRefactorMetricNames = []string{
	"serve_batch_jobs_total",
	"serve_batch_size",
	"serve_batches_total",
	"serve_breaker_short_circuits_total",
	"serve_breaker_state",
	"serve_breaker_transitions_total",
	"serve_cache_entries",
	"serve_cache_evictions_total",
	"serve_cache_hits_total",
	"serve_cache_misses_total",
	"serve_cnn_failures_total",
	"serve_fallbacks_total",
	"serve_inflight_requests",
	"serve_model_generation",
	"serve_model_reload_failures_total",
	"serve_model_reloads_total",
	"serve_predictions_total",
	"serve_queue_rejects_total",
	"serve_request_seconds",
	"serve_requests_total",
	"serve_rung_total",
	"serve_worker_panics_total",
}

// TestMetricsNameSuperset asserts the obs-backed /metrics output is a
// superset of the pre-refactor metric-name set.
func TestMetricsNameSuperset(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One request of each outcome so counters have been touched.
	postPredict(t, ts, matrixJSON(16, 1), "application/json")
	postPredict(t, ts, []byte("{"), "application/json")

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)

	for _, name := range preRefactorMetricNames {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("pre-refactor metric %s missing from /metrics", name)
		}
	}
	// Spot-check that old rendered series shapes survived the rewrite.
	for _, want := range []string{
		`serve_requests_total{code="200",endpoint="predict"}`,
		`serve_request_seconds_bucket{endpoint="predict",le="`,
		"serve_model_generation 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing rendered series %q in:\n%s", want, out)
		}
	}
}

// TestPredictAllocsGauge asserts the per-job allocation gauge is
// exposed and populated after a batch runs.
func TestPredictAllocsGauge(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postPredict(t, ts, matrixJSON(16, 1), "application/json")

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "# TYPE serve_predict_allocs gauge") {
		t.Fatal("serve_predict_allocs missing from /metrics")
	}
}

// traceResponse decodes a predict response including the trace block.
func traceResponse(t *testing.T, ts *httptest.Server, body []byte) (string, response) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/predict?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var r response
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("bad body %q: %v", data, err)
	}
	return resp.Header.Get("X-Trace-Id"), r
}

// TestTracePropagation verifies one trace ID spans the whole request
// path — HTTP ingress, batch queue, ladder rung, forward pass — and is
// reported consistently in the header, body, and /debug/traces ring.
func TestTracePropagation(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.CacheSize = 0 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	header, resp := traceResponse(t, ts, matrixJSON(24, 2))
	if header == "" || resp.TraceID != header {
		t.Fatalf("trace ID mismatch: header %q body %q", header, resp.TraceID)
	}

	stages := map[string]bool{}
	for _, sp := range resp.Trace {
		if sp.DurationMicros < 0 {
			t.Errorf("span %s has negative duration", sp.Name)
		}
		if strings.HasPrefix(sp.Name, "rung:") {
			stages["rung"] = true
		}
		stages[sp.Name] = true
	}
	for _, want := range []string{"parse", "queue", "batch", "rung"} {
		if !stages[want] {
			t.Errorf("trace missing %q span; got %+v", want, resp.Trace)
		}
	}

	// The finished trace must land in the admin ring with its status.
	admin := httptest.NewServer(s.AdminHandler())
	defer admin.Close()
	tr, err := admin.Client().Get(admin.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	ring, _ := io.ReadAll(tr.Body)
	if !strings.Contains(string(ring), header) {
		t.Errorf("trace %s absent from /debug/traces:\n%s", header, ring)
	}
}

// TestTracePropagationUnderBatching fires concurrent requests so the
// dispatcher coalesces them into shared batches, then checks every
// response still carries its own distinct, complete trace.
func TestTracePropagationUnderBatching(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.CacheSize = 0
		c.BatchWindow = 5 * time.Millisecond
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	ids := make([]string, n)
	resps := make([]response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct sizes defeat the cache so every request rides a batch.
			ids[i], resps[i] = traceResponse(t, ts, matrixJSON(16+i, 1))
		}(i)
	}
	wg.Wait()

	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		if ids[i] == "" || seen[ids[i]] {
			t.Fatalf("request %d: missing or duplicated trace ID %q", i, ids[i])
		}
		seen[ids[i]] = true
		stages := map[string]bool{}
		for _, sp := range resps[i].Trace {
			stages[sp.Name] = true
			if strings.HasPrefix(sp.Name, "rung:") {
				stages["rung"] = true
			}
		}
		for _, want := range []string{"parse", "queue", "batch", "rung"} {
			if !stages[want] {
				t.Errorf("request %d trace missing %q span: %+v", i, want, resps[i].Trace)
			}
		}
	}
}

// TestTraceOptInOnly: without ?trace=1 the response carries the ID but
// not the span block, keeping default payloads small.
func TestTraceOptInOnly(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp, _ := postPredict(t, ts, matrixJSON(24, 2), "application/json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.TraceID == "" {
		t.Fatal("trace ID absent without opt-in")
	}
	if len(resp.Trace) != 0 {
		t.Fatalf("span block leaked without opt-in: %+v", resp.Trace)
	}
}
