package serve

import (
	"container/list"
	"sync"

	"repro/internal/selector"
)

// predictionCache is a fixed-capacity LRU map from sparsity-pattern
// fingerprint to a served prediction. Keys are sparse.Fingerprint
// values: position-only hashes, so any matrix with an identical pattern
// reuses the cached result and skips the CNN forward pass entirely.
//
// Entries carry the model generation that produced them; Reset is
// called on every hot reload so a new model never serves a
// predecessor's answers.
type predictionCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[uint64]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  uint64
	pred selector.Prediction
	gen  uint64
}

// newPredictionCache builds a cache; cap <= 0 disables caching (every
// Get misses, Add is a no-op).
func newPredictionCache(capacity int) *predictionCache {
	return &predictionCache{cap: capacity, ll: list.New(), m: map[uint64]*list.Element{}}
}

// Get returns the cached prediction and its model generation, marking
// the entry most recently used.
func (c *predictionCache) Get(key uint64) (selector.Prediction, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return selector.Prediction{}, 0, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.pred, e.gen, true
}

// Add stores a prediction, evicting the least recently used entry when
// full. The stored Probs map is shared with every future hit, so
// callers must treat cached predictions as immutable.
func (c *predictionCache) Add(key uint64, pred selector.Prediction, gen uint64) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.pred, e.gen = pred, gen
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, pred: pred, gen: gen})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Reset drops every entry — called when a new model generation goes
// live.
func (c *predictionCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = map[uint64]*list.Element{}
}

// Len returns the current entry count.
func (c *predictionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hits, misses and evictions.
func (c *predictionCache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
