package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/robust"
)

// Peer cache-fill: the cluster router shards the prediction cache
// across replicas by rendezvous-hashing each request's fingerprint and
// sends the owner's base URL along as the X-Shard-Owner header. When a
// request lands on a non-owner (a retry, a hedge, or failover after the
// owner dropped out) and misses the local cache, the replica asks the
// owner's cache over GET /v1/cache before paying for a forward pass.
//
// The fill is an optimisation, never a dependency. It is strictly
// bounded by PeerFillTimeout (and by whatever remains of the request's
// own budget, whichever is smaller), and every failure mode — peer
// dead, peer slow, peer answering garbage — falls open to local
// compute. The chaos suite proves this with the serve.peer.stall and
// serve.peer.error injection points.

// CurrentRung reports which ladder rung would answer a request arriving
// now: "cnn" while the breaker admits CNN traffic (closed or probing)
// and the overload plane is not browned out, "dtree" while the breaker
// is open (or brownout engaged) and the tree rung stands, "csr" when
// the breaker is open and there is no tree — the hard-down state
// /readyz turns into a 503. A browned-out replica reports dtree so the
// router's prober sees it as degraded-but-routable, exactly like an
// open breaker.
func (s *Server) CurrentRung() string {
	if s.brownedOut() {
		return rungDTree
	}
	if s.breaker.State() != robust.BreakerOpen {
		return rungCNN
	}
	if s.dtree != nil {
		return rungDTree
	}
	return rungCSR
}

// peerFill asks the shard owner's cache for fp. It returns (resp, true)
// only on a confirmed peer cache hit; every other outcome — not in a
// cluster, we are the owner, miss, timeout, error — returns false and
// the caller computes locally. The outcome (when an attempt was made)
// lands in meta.peerOutcome and serve_peer_fill_total.
func (s *Server) peerFill(ctx context.Context, fp uint64, meta *predictMeta) (response, bool) {
	if meta.owner == "" || s.cfg.CacheSize <= 0 {
		return response{}, false
	}
	self := s.SelfURL()
	if self == "" || meta.owner == self {
		// A replica that does not know its own identity cannot tell
		// whether the hint names itself — fail open rather than
		// self-query.
		return response{}, false
	}
	timeout := s.cfg.PeerFillTimeout
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining < timeout {
			timeout = remaining
		}
	}
	if timeout <= 0 {
		return response{}, false
	}
	fctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	fillStart := time.Now()
	resp, err := s.peerLookup(fctx, meta.owner, fp)
	obs.TraceFrom(ctx).ObserveSpan("peerfill", fillStart)
	outcome := "hit"
	switch {
	case err != nil && (errors.Is(err, context.DeadlineExceeded) || fctx.Err() != nil):
		outcome = "timeout"
	case err != nil:
		if errors.Is(err, errPeerMiss) {
			outcome = "miss"
		} else {
			outcome = "error"
		}
	}
	meta.peerOutcome = outcome
	s.met.peerFill.With(fmt.Sprintf("outcome=%q", outcome)).Inc()
	if err != nil {
		if outcome != "miss" {
			s.logf("serve: peer cache-fill from %s failed open: %v", meta.owner, err)
		}
		return response{}, false
	}
	return resp, true
}

// errPeerMiss is the (expected, quiet) "owner has no entry" outcome.
var errPeerMiss = errors.New("serve: peer cache miss")

// peerLookup performs one GET /v1/cache round trip against owner.
func (s *Server) peerLookup(ctx context.Context, owner string, fp uint64) (response, error) {
	// Chaos hooks: a stalled owner sleeps here (bounded by ctx — the
	// fill deadline turns it into a timeout outcome), a broken one
	// errors here.
	if err := faultinject.InjectCtx(ctx, faultinject.PointPeerStall); err != nil {
		return response{}, err
	}
	if err := faultinject.Inject(faultinject.PointPeerError); err != nil {
		return response{}, err
	}
	url := owner + "/v1/cache?fp=" + strconv.FormatUint(fp, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return response{}, err
	}
	res, err := s.peerClient.Do(req)
	if err != nil {
		return response{}, err
	}
	defer res.Body.Close()
	switch res.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return response{}, errPeerMiss
	default:
		return response{}, fmt.Errorf("serve: peer cache lookup: status %d", res.StatusCode)
	}
	var out response
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		return response{}, fmt.Errorf("serve: peer cache lookup: decoding body: %w", err)
	}
	return out, nil
}

// handleCacheLookup answers GET /v1/cache?fp=<decimal fingerprint>: the
// shard-owner side of peer cache-fill. It only ever reads the local
// cache — a lookup can never trigger a forward pass on the owner, so a
// fill storm cannot amplify load. 404 means "not cached here" and the
// asking replica computes locally.
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := http.StatusOK
	defer func() { s.met.request("cache", code, start) }()

	if r.Method != http.MethodGet {
		code = http.StatusMethodNotAllowed
		writeJSON(w, code, errorResponse{Error: "GET only"})
		return
	}
	if s.draining.Load() {
		code = http.StatusServiceUnavailable
		writeJSON(w, code, errorResponse{Error: "server is draining"})
		return
	}
	fp, err := strconv.ParseUint(r.URL.Query().Get("fp"), 10, 64)
	if err != nil {
		code = http.StatusBadRequest
		writeJSON(w, code, errorResponse{Error: "fp must be a decimal uint64 fingerprint"})
		return
	}
	pred, gen, ok := s.cache.Get(fp)
	if !ok {
		code = http.StatusNotFound
		writeJSON(w, code, errorResponse{Error: "fingerprint not cached"})
		return
	}
	// Only CNN-rung answers are ever cached, so a hit reports rung cnn.
	writeJSON(w, code, makeResponse(pred, gen, true, rungCNN))
}
