package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/selector"
	"repro/internal/sparse"
)

// postWithHeaders posts a predict body with cluster headers attached
// (X-Shard-Owner, X-Retry-Attempt) and returns the raw response plus
// decoded bodies.
func postWithHeaders(t testing.TB, ts *httptest.Server, body []byte, hdr map[string]string) (*http.Response, response, errorResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	res, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	data, _ := io.ReadAll(res.Body)
	var ok response
	var bad errorResponse
	if res.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &ok); err != nil {
			t.Fatalf("bad 200 body %q: %v", data, err)
		}
	} else {
		json.Unmarshal(data, &bad)
	}
	return res, ok, bad
}

// newPeerPair builds two replicas: owner (serving on a real listener so
// the peer client can reach it) and follower, whose SelfURL is pinned
// to a distinct identity so an X-Shard-Owner hint naming the owner
// triggers a peer fill.
func newPeerPair(t *testing.T, mutateFollower func(*Config)) (ownerTS, followerTS *httptest.Server) {
	t.Helper()
	owner, _ := newTestServer(t, nil)
	ownerTS = httptest.NewServer(owner.Handler())
	t.Cleanup(ownerTS.Close)
	follower, _ := newTestServer(t, func(c *Config) {
		c.SelfURL = "http://follower.test.invalid"
		if mutateFollower != nil {
			mutateFollower(c)
		}
	})
	followerTS = httptest.NewServer(follower.Handler())
	t.Cleanup(followerTS.Close)
	return ownerTS, followerTS
}

func TestPeerFillHit(t *testing.T) {
	ownerTS, followerTS := newPeerPair(t, nil)
	body := matrixJSON(20, 2)

	// Warm the owner's cache, then ask the follower with the owner hint.
	res, warm, _ := postWithHeaders(t, ownerTS, body, nil)
	if res.StatusCode != http.StatusOK || warm.Rung != rungCNN {
		t.Fatalf("warmup: code %d rung %q", res.StatusCode, warm.Rung)
	}
	res, got, _ := postWithHeaders(t, followerTS, body, map[string]string{"X-Shard-Owner": ownerTS.URL})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("peer-filled request: code %d", res.StatusCode)
	}
	if cs := res.Header.Get("X-Cache-Status"); cs != "peer" {
		t.Fatalf("X-Cache-Status %q, want peer", cs)
	}
	if pf := res.Header.Get("X-Peer-Fill"); pf != "hit" {
		t.Fatalf("X-Peer-Fill %q, want hit", pf)
	}
	if !got.Cached || got.Format != warm.Format {
		t.Fatalf("peer answer cached=%v format=%q, want the owner's cached %q", got.Cached, got.Format, warm.Format)
	}
	page := scrapeMetrics(t, followerTS)
	if v := labeledMetric(page, `serve_peer_fill_total{outcome="hit"}`); v != 1 {
		t.Fatalf("peer fill hit metric %g, want 1", v)
	}
}

func TestPeerFillMissComputesLocally(t *testing.T) {
	ownerTS, followerTS := newPeerPair(t, nil)
	res, got, _ := postWithHeaders(t, followerTS, matrixJSON(24, 1), map[string]string{"X-Shard-Owner": ownerTS.URL})
	if res.StatusCode != http.StatusOK || got.Cached {
		t.Fatalf("code %d cached=%v, want 200 computed locally", res.StatusCode, got.Cached)
	}
	if pf := res.Header.Get("X-Peer-Fill"); pf != "miss" {
		t.Fatalf("X-Peer-Fill %q, want miss", pf)
	}
	if _, err := sparse.ParseFormat(got.Format); err != nil {
		t.Fatalf("bad format %q", got.Format)
	}
}

// TestChaosPeerStallFailsOpen: a stalled shard owner must cost at most
// the peer-fill deadline, never the request — the fill times out and
// the request is answered by local compute well inside its own budget.
func TestChaosPeerStallFailsOpen(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	ownerTS, followerTS := newPeerPair(t, func(c *Config) {
		c.PeerFillTimeout = 50 * time.Millisecond
	})
	faultinject.Enable(faultinject.PointPeerStall, faultinject.Fault{Delay: 10 * time.Second})

	start := time.Now()
	res, got, _ := postWithHeaders(t, followerTS, matrixJSON(18, 2), map[string]string{"X-Shard-Owner": ownerTS.URL})
	elapsed := time.Since(start)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("stalled peer leaked into the answer: code %d", res.StatusCode)
	}
	if pf := res.Header.Get("X-Peer-Fill"); pf != "timeout" {
		t.Fatalf("X-Peer-Fill %q, want timeout", pf)
	}
	if got.Cached {
		t.Fatal("timed-out fill still claimed a cached answer")
	}
	// Generous bound: the fill may cost its 50ms deadline, the answer
	// must not wait out the 10s stall.
	if elapsed > 5*time.Second {
		t.Fatalf("request took %v under a stalled peer", elapsed)
	}
	page := scrapeMetrics(t, followerTS)
	if v := labeledMetric(page, `serve_peer_fill_total{outcome="timeout"}`); v != 1 {
		t.Fatalf("peer fill timeout metric %g, want 1", v)
	}
}

// TestChaosPeerErrorFailsOpen: a dead or refusing shard owner is an
// immediate fail-open to local compute.
func TestChaosPeerErrorFailsOpen(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	ownerTS, followerTS := newPeerPair(t, nil)
	faultinject.Enable(faultinject.PointPeerError, faultinject.Fault{Err: faultinject.ErrInjected})

	res, got, _ := postWithHeaders(t, followerTS, matrixJSON(18, 2), map[string]string{"X-Shard-Owner": ownerTS.URL})
	if res.StatusCode != http.StatusOK || got.Cached {
		t.Fatalf("code %d cached=%v, want 200 computed locally", res.StatusCode, got.Cached)
	}
	if pf := res.Header.Get("X-Peer-Fill"); pf != "error" {
		t.Fatalf("X-Peer-Fill %q, want error", pf)
	}
	page := scrapeMetrics(t, followerTS)
	if v := labeledMetric(page, `serve_peer_fill_total{outcome="error"}`); v != 1 {
		t.Fatalf("peer fill error metric %g, want 1", v)
	}
}

// TestPeerFillSkippedWithoutIdentity: a replica that never learned its
// own URL cannot tell whether the hint names itself, so it must skip
// the fill entirely (no outcome header, no metric).
func TestPeerFillSkippedWithoutIdentity(t *testing.T) {
	s, _ := newTestServer(t, nil) // SelfURL never set; Serve() not used
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, _, _ := postWithHeaders(t, ts, matrixJSON(16, 1), map[string]string{"X-Shard-Owner": "http://other.test.invalid"})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("code %d", res.StatusCode)
	}
	if pf := res.Header.Get("X-Peer-Fill"); pf != "" {
		t.Fatalf("X-Peer-Fill %q, want no attempt", pf)
	}
}

func TestCacheLookupEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(query string) (*http.Response, []byte) {
		res, err := ts.Client().Get(ts.URL + "/v1/cache" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		data, _ := io.ReadAll(res.Body)
		return res, data
	}

	if res, _ := get("?fp=not-a-number"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad fp: code %d, want 400", res.StatusCode)
	}
	if res, _ := get("?fp=12345"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fp: code %d, want 404", res.StatusCode)
	}

	s.cache.Add(42, selector.Prediction{Format: sparse.FormatCSR}, s.Generation())
	res, data := get("?fp=" + strconv.FormatUint(42, 10))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("cached fp: code %d, want 200", res.StatusCode)
	}
	var got response
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("bad body %q: %v", data, err)
	}
	if !got.Cached || got.Rung != rungCNN || got.Format != sparse.FormatCSR.String() {
		t.Fatalf("cached=%v rung=%q format=%q", got.Cached, got.Rung, got.Format)
	}
}

// TestReadyzReportsRung pins the degraded-readiness contract the
// router's prober parses: 200 rung=cnn healthy, 200 rung=dtree while
// the breaker is open but the tree stands, 503 when the ladder is down
// to the CSR floor.
func TestReadyzReportsRung(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.BreakerThreshold = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readyz := func() (int, string) {
		res, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		data, _ := io.ReadAll(res.Body)
		return res.StatusCode, string(data)
	}

	if code, body := readyz(); code != http.StatusOK || body != "ready rung=cnn\n" {
		t.Fatalf("healthy: %d %q", code, body)
	}
	s.breaker.Failure() // threshold 1: breaker opens, tree rung takes over
	if code, body := readyz(); code != http.StatusOK || body != "ready rung=dtree\n" {
		t.Fatalf("degraded: %d %q, want 200 rung=dtree", code, body)
	}
	s.dtree = nil // hard-down: no middle rung left
	if code, body := readyz(); code != http.StatusServiceUnavailable || body != "degraded rung=csr\n" {
		t.Fatalf("hard-down: %d %q, want 503 rung=csr", code, body)
	}
}

// TestPredictCoalescesDuplicates: concurrent identical requests share
// one computation (idempotency-by-fingerprint under router retries and
// hedges). The retry header only relabels accounting; the duplicate
// never costs a second forward pass.
func TestPredictCoalescesDuplicates(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s, _ := newTestServer(t, func(c *Config) {
		c.BatchMax = 1 // the leader's batch holds only the leader
	})
	s.testHookPreBatch = func() {
		once.Do(func() { close(entered) })
		<-hold
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := matrixJSON(30, 2)

	type result struct {
		res *http.Response
		ok  response
	}
	results := make(chan result, 4)
	go func() {
		res, ok, _ := postWithHeaders(t, ts, body, nil)
		results <- result{res, ok}
	}()
	<-entered // leader is on a worker, its fingerprint registered in flight

	// Router-style duplicates: same body, attempt header set.
	for i := 0; i < 3; i++ {
		go func() {
			res, ok, _ := postWithHeaders(t, ts, body, map[string]string{"X-Retry-Attempt": "1"})
			results <- result{res, ok}
		}()
	}
	// Let the duplicates attach to the in-flight call before releasing
	// the worker.
	deadline := time.After(5 * time.Second)
	for {
		var v float64
		page := scrapeMetrics(t, ts)
		v = metricValue(t, page, "serve_dedup_hits_total")
		if v >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %g duplicates coalesced", v)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(hold)

	coalesced := 0
	var format string
	for i := 0; i < 4; i++ {
		r := <-results
		if r.res.StatusCode != http.StatusOK {
			t.Fatalf("request %d: code %d", i, r.res.StatusCode)
		}
		if format == "" {
			format = r.ok.Format
		} else if r.ok.Format != format {
			t.Fatalf("answers diverged: %q vs %q", r.ok.Format, format)
		}
		if r.ok.Coalesced {
			coalesced++
		}
	}
	if coalesced != 3 {
		t.Fatalf("%d coalesced answers, want 3", coalesced)
	}
	page := scrapeMetrics(t, ts)
	if jobs := metricValue(t, page, "serve_batch_jobs_total"); jobs != 1 {
		t.Fatalf("%g forward passes for 4 identical requests, want 1", jobs)
	}
	if v := labeledMetric(page, `serve_requests_total{code="200",endpoint="predict",retried="true"}`); v != 3 {
		t.Fatalf("retried request metric %g, want 3", v)
	}
}
