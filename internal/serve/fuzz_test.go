package serve

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sparse"
)

// FuzzPredictJSON drives the full request-ingestion path — body size
// cap, content sniffing, JSON and MatrixMarket decoding, resource
// limits, COO construction — with arbitrary bodies and content types.
// The invariant is the robustness contract: parseMatrix never panics,
// and every rejection maps onto the typed 400/413/422 taxonomy (no
// rejection may look like a server fault).
func FuzzPredictJSON(f *testing.F) {
	f.Add(`{"rows":3,"cols":3,"entries":[[0,0,1],[1,2,-4]]}`, "application/json")
	f.Add(`{"rows":0,"cols":0,"entries":[]}`, "application/json")
	f.Add(`{"rows":3`, "application/json")
	f.Add(`{"rows":3,"cols":3,"entries":[[0.5,1,1]]}`, "application/json")
	f.Add(`{"rows":99999999,"cols":99999999,"entries":[]}`, "application/json")
	f.Add(`{"rows":2,"cols":2,"entries":[[5,0,1]]}`, "application/json")
	f.Add(`{"rows":3,"cols":3,"entries":[],"extra":1}`, "application/json")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n", "text/matrix-market")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 3\n2 1 -1\n", "text/plain")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n", "text/matrix-market")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9\n1 1 1\n", "text/plain")
	f.Add("not a matrix at all", "text/plain")
	f.Add("", "application/json")

	// A model-less server is enough: parseMatrix only needs cfg.
	cfg := Config{
		MaxBodyBytes: 1 << 16,
		Limits: sparse.Limits{
			MaxRows:      1 << 10,
			MaxCols:      1 << 10,
			MaxNNZ:       1 << 10,
			MaxLineBytes: 1 << 8,
		},
	}
	cfg.defaults()
	s := &Server{cfg: cfg}

	f.Fuzz(func(t *testing.T, body, contentType string) {
		if strings.ContainsAny(contentType, "\r\n") {
			t.Skip() // not settable as a header; nothing to test
		}
		req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader([]byte(body)))
		req.Header.Set("Content-Type", contentType)
		m, _, err := s.parseMatrix(context.Background(), req)
		if err != nil {
			if st := ingestStatus(err); st != 400 && st != 413 && st != 422 {
				t.Fatalf("rejection mapped to status %d (err %v)", st, err)
			}
			return
		}
		// Accepted matrices must respect the configured resource budget
		// (×2 headroom: symmetric MatrixMarket entries expand to two).
		r, c := m.Dims()
		if r > cfg.Limits.MaxRows || c > cfg.Limits.MaxCols || m.NNZ() > 2*cfg.Limits.MaxNNZ {
			t.Fatalf("accepted %dx%d matrix with %d nonzeros past limits %+v", r, c, m.NNZ(), cfg.Limits)
		}
	})
}
