package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/robust"
)

// requestLabel renders the label set of one completed request,
// byte-identical to the pre-obs exposition for first attempts. Router
// retries and hedges gain a trailing retried="true" label (appended
// last to keep the alphabetical label order the renderer pins), so
// fleet dashboards can subtract failover duplicates from true demand.
func requestLabel(endpoint string, code int, retried bool) string {
	l := fmt.Sprintf("code=%q,endpoint=%q", strconv.Itoa(code), endpoint)
	if retried {
		l += `,retried="true"`
	}
	return l
}

// endpointLabel renders the latency histogram's label set.
func endpointLabel(endpoint string) string {
	return fmt.Sprintf("endpoint=%q", endpoint)
}

// This file wires the server's instrument set onto the shared obs
// registry (internal/obs). Every metric name predates the obs layer —
// dashboards scrape them — so the refactor keeps the full name set (a
// regression test asserts the superset) while gaining labeled
// histograms, quantile snapshots and a registry the admin listener and
// request tracing share.

// metrics is the server's full instrument set.
type metrics struct {
	reg *obs.Registry

	requests       *obs.CounterVec   // endpoint, code
	latency        *obs.HistogramVec // endpoint -> seconds
	predictions    *obs.CounterVec   // format
	fallbacks      *obs.CounterVec   // reason class
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheSize      *obs.Gauge
	dedupHits      *obs.Counter    // requests coalesced onto an in-flight computation
	peerFill       *obs.CounterVec // peer cache-fill attempts by outcome
	batches        *obs.Counter
	batchJobs      *obs.Counter
	batchSize      *obs.Histogram
	predictAllocs  *obs.Gauge // heap objects allocated per predict job, last batch
	queueRejects   *obs.Counter
	reloads        *obs.Counter

	// Overload-control instruments (see overload.go). The counters are
	// always registered (they also cover the always-on dequeue eviction);
	// the admission/SLO gauges appear only when the plane is enabled.
	queueExpired          *obs.Counter    // jobs evicted unexecuted at dequeue
	admissionRejects      *obs.CounterVec // sheds by reason (queue, deadline, expired)
	brownoutState         *obs.Gauge      // 1 while browned out
	brownoutTransitions   *obs.CounterVec // brownout transitions by target state
	brownoutShortCircuits *obs.Counter    // requests stepped past the CNN by brownout
	reloadFails           *obs.Counter
	modelGen              *obs.Gauge
	workerPanics          *obs.Gauge
	inflight              atomic.Int64

	// Degradation-ladder instruments (see ladder.go).
	rungs                *obs.CounterVec // which ladder rung answered
	cnnFailures          *obs.CounterVec // CNN rung failures by cause
	breakerTransitions   *obs.CounterVec // breaker transitions by target state
	breakerState         *obs.Gauge      // 0=closed, 1=open, 2=half-open
	breakerShortCircuits *obs.Counter    // requests routed past the CNN without trying it

	// Shadow-deployment instruments (see shadow.go).
	shadowLoaded   *obs.Gauge     // 1 while a shadow model is installed
	shadowLoads    *obs.Counter   // accepted shadow loads
	shadowRejects  *obs.Counter   // rejected shadow artifacts (checksum/probe)
	shadowRequests *obs.Counter   // predictions mirrored through the shadow
	shadowAgree    *obs.Counter   // mirrored predictions agreeing with live
	shadowDisagree *obs.Counter   // mirrored predictions disagreeing with live
	shadowErrors   *obs.Counter   // shadow forward passes that failed
	shadowSeconds  *obs.Histogram // shadow forward latency
}

// newMetrics registers the serving instrument set on a fresh registry.
// Registration order is rendering order, matched to the pre-obs
// exposition so diffs against old scrapes stay readable.
func newMetrics() *metrics {
	r := obs.NewRegistry()
	m := &metrics{reg: r}

	m.requests = r.CounterVec("serve_requests_total", "HTTP requests by endpoint and status code.")
	m.latency = r.HistogramVec("serve_request_seconds", "Request latency by endpoint.", obs.DefLatencyBuckets())
	// Pre-create the endpoint series so a fresh server's scrape already
	// shows the full latency name set.
	for _, ep := range []string{"cache", "healthz", "metrics", "predict", "readyz"} {
		m.latency.With(endpointLabel(ep))
	}
	m.predictions = r.CounterVec("serve_predictions_total", "Predictions served, by chosen format.")
	m.fallbacks = r.CounterVec("serve_fallbacks_total", "Predictions that degraded to the CSR baseline, by cause.")
	m.rungs = r.CounterVec("serve_rung_total", "Predictions answered, by ladder rung (cnn, dtree, csr).")
	m.cnnFailures = r.CounterVec("serve_cnn_failures_total", "CNN rung failures counted against the breaker, by cause.")
	m.breakerTransitions = r.CounterVec("serve_breaker_transitions_total", "Circuit breaker state transitions, by target state.")
	m.breakerState = r.Gauge("serve_breaker_state", "Circuit breaker state (0=closed, 1=open, 2=half-open).")
	m.breakerShortCircuits = r.Counter("serve_breaker_short_circuits_total", "Requests routed past the CNN rung while the breaker was open.")

	m.cacheHits = r.Counter("serve_cache_hits_total", "Prediction cache hits (NN forward pass skipped).")
	m.cacheMisses = r.Counter("serve_cache_misses_total", "Prediction cache misses.")
	m.cacheEvictions = r.Counter("serve_cache_evictions_total", "Prediction cache LRU evictions.")
	m.cacheSize = r.Gauge("serve_cache_entries", "Current prediction cache entries.")
	m.dedupHits = r.Counter("serve_dedup_hits_total", "Requests coalesced onto an in-flight computation for the same fingerprint.")
	m.peerFill = r.CounterVec("serve_peer_fill_total", "Peer cache-fill attempts, by outcome (hit, miss, timeout, error).")

	m.batches = r.Counter("serve_batches_total", "Micro-batches dispatched to the worker pool.")
	m.batchJobs = r.Counter("serve_batch_jobs_total", "Prediction jobs processed through batches.")
	m.batchSize = r.Histogram("serve_batch_size", "Jobs coalesced per micro-batch.", obs.DefBatchBuckets())
	m.predictAllocs = r.Gauge("serve_predict_allocs", "Heap objects allocated per predict job over the most recent micro-batch (process-wide delta: concurrent batches and background work inflate it).")
	m.queueRejects = r.Counter("serve_queue_rejects_total", "Requests rejected because the batch queue was full.")
	m.queueExpired = r.Counter("serve_queue_expired_total", "Jobs evicted unexecuted at dequeue because their deadline expired (or the client hung up) while queued.")
	m.admissionRejects = r.CounterVec("serve_admission_rejects_total", "Requests shed by SLO-driven admission, by reason (queue, deadline, expired).")
	m.brownoutState = r.Gauge("serve_brownout_state", "1 while the overload plane is answering from the dtree rung for capacity reasons.")
	m.brownoutTransitions = r.CounterVec("serve_brownout_transitions_total", "Brownout transitions, by target state (engaged, normal).")
	m.brownoutShortCircuits = r.Counter("serve_brownout_short_circuits_total", "Requests stepped past the CNN rung by the brownout controller.")

	m.shadowLoaded = r.Gauge("serve_shadow_loaded", "1 while a shadow model is installed for mirrored inference.")
	m.shadowLoads = r.Counter("serve_shadow_loads_total", "Shadow models accepted (checksummed load + probe passed).")
	m.shadowRejects = r.Counter("serve_shadow_rejects_total", "Shadow artifacts rejected by the checksummed loader or probe.")
	m.shadowRequests = r.Counter("serve_shadow_requests_total", "Predictions mirrored through the shadow model.")
	m.shadowAgree = r.Counter("serve_shadow_agree_total", "Mirrored predictions whose shadow format matched the live answer.")
	m.shadowDisagree = r.Counter("serve_shadow_disagree_total", "Mirrored predictions whose shadow format differed from the live answer.")
	m.shadowErrors = r.Counter("serve_shadow_errors_total", "Shadow forward passes that failed or timed out.")
	m.shadowSeconds = r.Histogram("serve_shadow_seconds", "Shadow model forward latency.", obs.DefLatencyBuckets())

	m.reloads = r.Counter("serve_model_reloads_total", "Successful model hot reloads.")
	m.reloadFails = r.Counter("serve_model_reload_failures_total", "Rejected model reloads (validation failed; old model kept).")
	m.modelGen = r.Gauge("serve_model_generation", "Generation of the live model (bumps on every reload).")
	m.workerPanics = r.Gauge("serve_worker_panics_total", "Panics contained by the prediction worker pool.")

	r.GaugeFunc("serve_inflight_requests", "Predict requests currently in flight.", func() float64 {
		v := m.inflight.Load()
		if v < 0 {
			v = 0
		}
		return float64(v)
	})
	started := time.Now()
	r.GaugeFunc("serve_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(started).Seconds()
	})
	obs.RuntimeGauges(r)
	return m
}

// instrumentPool exposes worker-pool liveness through the registry —
// throughput and queue depth, next to the panic containment the gauge
// above tracks.
func (m *metrics) instrumentPool(p *robust.Pool) {
	m.reg.GaugeFunc("serve_pool_tasks_submitted_total", "Tasks accepted by the prediction worker pool.", func() float64 {
		return float64(p.Stats().Submitted)
	})
	m.reg.GaugeFunc("serve_pool_tasks_completed_total", "Tasks finished by the prediction worker pool (panicked tasks included).", func() float64 {
		return float64(p.Stats().Completed)
	})
	m.reg.GaugeFunc("serve_pool_queue_depth", "Tasks waiting in the prediction pool queue.", func() float64 {
		return float64(p.Stats().Queued)
	})
}

// instrumentAdmission exposes the overload-control plane: the adaptive
// limit and its occupancy, the autosized worker count, the SLO window
// (goodput and burn rate) and the drain-rate-derived Retry-After.
// Registered only when Config.SLOTargetP99 enables the plane.
func (m *metrics) instrumentAdmission(a *admission) {
	m.reg.GaugeFunc("serve_admission_limit", "Current adaptive admission limit (jobs allowed in the system).", func() float64 {
		return float64(a.lim.Limit())
	})
	m.reg.GaugeFunc("serve_admission_inflight", "Jobs currently holding an admission slot (queued + executing).", func() float64 {
		return float64(a.lim.InFlight())
	})
	m.reg.GaugeFunc("serve_autosize_workers", "Autosized batch-worker parallelism (tracks the admission limit).", func() float64 {
		return float64(a.effWorkers())
	})
	m.reg.GaugeFunc("serve_slo_target_seconds", "Configured p99 latency SLO target.", func() float64 {
		return a.target.Seconds()
	})
	m.reg.GaugeFunc("serve_slo_goodput_rps", "In-SLO successful answers per second over the rolling window.", func() float64 {
		return a.tracker.Snapshot().GoodputRPS
	})
	m.reg.GaugeFunc("serve_slo_burn_rate", "SLO error-budget burn rate over the rolling window (1.0 = spending exactly the budget).", func() float64 {
		return a.tracker.Snapshot().BurnRate
	})
	m.reg.GaugeFunc("serve_retry_after_seconds", "Retry-After currently advised to shed clients (derived from queue drain rate).", func() float64 {
		return float64(a.retryAfterSeconds())
	})
}

// instrumentBreaker exposes breaker internals beyond the state gauge.
func (m *metrics) instrumentBreaker(b *robust.Breaker) {
	m.reg.GaugeFunc("serve_breaker_consecutive_failures", "Current consecutive-failure streak against the CNN rung.", func() float64 {
		return float64(b.Consecutive())
	})
}

// request records one completed request (never a retry — only
// /v1/predict carries the router's attempt header).
func (m *metrics) request(endpoint string, code int, start time.Time) {
	m.requestRetriable(endpoint, code, start, false)
}

// requestRetriable records one completed request, labeled as a router
// retry/hedge when the attempt header said so.
func (m *metrics) requestRetriable(endpoint string, code int, start time.Time, retried bool) {
	m.requests.With(requestLabel(endpoint, code, retried)).Inc()
	m.latency.With(endpointLabel(endpoint)).ObserveSince(start)
}

// WriteTo renders the full metric set in Prometheus text format.
func (m *metrics) WriteTo(w io.Writer) (int64, error) {
	return m.reg.WriteTo(w)
}
