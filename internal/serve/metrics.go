package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is a minimal, dependency-free Prometheus instrumentation
// layer: atomic counters, gauges and fixed-bucket histograms that
// render themselves in the text exposition format (version 0.0.4). The
// set is small and fixed at Server construction, so rendering is a
// deterministic walk — no reflection, no global registries.

// counter is a monotonically increasing atomic counter.
type counter struct {
	v atomic.Uint64
}

func (c *counter) Inc()          { c.v.Add(1) }
func (c *counter) Add(n uint64)  { c.v.Add(n) }
func (c *counter) Value() uint64 { return c.v.Load() }

// gauge is a settable instantaneous value.
type gauge struct {
	v atomic.Uint64
}

func (g *gauge) Set(n uint64)  { g.v.Store(n) }
func (g *gauge) Value() uint64 { return g.v.Load() }

// labeledCounter is a counter vector over one or two label dimensions,
// created lazily per label combination.
type labeledCounter struct {
	mu sync.Mutex
	m  map[string]*counter
}

func newLabeledCounter() *labeledCounter {
	return &labeledCounter{m: map[string]*counter{}}
}

// With returns the counter for a rendered label set such as
// `endpoint="predict",code="200"`.
func (lc *labeledCounter) With(labels string) *counter {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	c, ok := lc.m[labels]
	if !ok {
		c = &counter{}
		lc.m[labels] = c
	}
	return c
}

// snapshot returns the label sets in sorted order for deterministic
// rendering.
func (lc *labeledCounter) snapshot() []struct {
	Labels string
	Value  uint64
} {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]struct {
		Labels string
		Value  uint64
	}, 0, len(lc.m))
	for l, c := range lc.m {
		out = append(out, struct {
			Labels string
			Value  uint64
		}{l, c.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels < out[j].Labels })
	return out
}

// histogram is a fixed-bucket cumulative histogram with an atomic
// float64 sum (CAS on the bit pattern).
type histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}
}

// defLatencyBuckets covers sub-millisecond cache hits through
// multi-second cold predictions on big matrices.
func defLatencyBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}
}

// defBatchBuckets covers micro-batch sizes up to the default cap.
func defBatchBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64}
}

// Observe records one sample.
func (h *histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// write renders the histogram series for a metric name with an optional
// extra label prefix (e.g. `endpoint="predict"`).
func (h *histogram) write(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, formatBound(b), h.buckets[i].Load())
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count.Load())
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, math.Float64frombits(h.sumBits.Load()))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
}

func formatBound(b float64) string {
	s := fmt.Sprintf("%g", b)
	return s
}

// metrics is the server's full instrument set.
type metrics struct {
	requests       *labeledCounter       // endpoint, code
	latency        map[string]*histogram // endpoint -> seconds
	predictions    *labeledCounter       // format
	fallbacks      *labeledCounter       // reason class
	cacheHits      counter
	cacheMisses    counter
	cacheEvictions counter
	cacheSize      gauge
	batches        counter
	batchJobs      counter
	batchSize      *histogram
	queueRejects   counter
	reloads        counter
	reloadFails    counter
	modelGen       gauge
	workerPanics   gauge
	inflight       atomic.Int64
	started        time.Time

	// Degradation-ladder instruments (see ladder.go).
	rungs                *labeledCounter // which ladder rung answered
	cnnFailures          *labeledCounter // CNN rung failures by cause
	breakerTransitions   *labeledCounter // breaker transitions by target state
	breakerState         gauge           // 0=closed, 1=open, 2=half-open
	breakerShortCircuits counter         // requests routed past the CNN without trying it
}

func newMetrics() *metrics {
	return &metrics{
		requests:    newLabeledCounter(),
		predictions: newLabeledCounter(),
		fallbacks:   newLabeledCounter(),
		latency: map[string]*histogram{
			"predict": newHistogram(defLatencyBuckets()),
			"healthz": newHistogram(defLatencyBuckets()),
			"readyz":  newHistogram(defLatencyBuckets()),
			"metrics": newHistogram(defLatencyBuckets()),
		},
		batchSize:          newHistogram(defBatchBuckets()),
		started:            time.Now(),
		rungs:              newLabeledCounter(),
		cnnFailures:        newLabeledCounter(),
		breakerTransitions: newLabeledCounter(),
	}
}

// request records one completed request.
func (m *metrics) request(endpoint string, code int, start time.Time) {
	m.requests.With(fmt.Sprintf("code=%q,endpoint=%q", fmt.Sprint(code), endpoint)).Inc()
	if h, ok := m.latency[endpoint]; ok {
		h.ObserveSince(start)
	}
}

// WriteTo renders the full metric set in Prometheus text format.
func (m *metrics) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder

	writeLabeled := func(name, help, typ string, lc *labeledCounter) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, e := range lc.snapshot() {
			fmt.Fprintf(&b, "%s{%s} %d\n", name, e.Labels, e.Value)
		}
	}
	writeCounter := func(name, help string, c *counter) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, c.Value())
	}
	writeGauge := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	writeLabeled("serve_requests_total", "HTTP requests by endpoint and status code.", "counter", m.requests)

	fmt.Fprintf(&b, "# HELP serve_request_seconds Request latency by endpoint.\n# TYPE serve_request_seconds histogram\n")
	eps := make([]string, 0, len(m.latency))
	for ep := range m.latency {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		m.latency[ep].write(&b, "serve_request_seconds", fmt.Sprintf("endpoint=%q", ep))
	}

	writeLabeled("serve_predictions_total", "Predictions served, by chosen format.", "counter", m.predictions)
	writeLabeled("serve_fallbacks_total", "Predictions that degraded to the CSR baseline, by cause.", "counter", m.fallbacks)
	writeLabeled("serve_rung_total", "Predictions answered, by ladder rung (cnn, dtree, csr).", "counter", m.rungs)
	writeLabeled("serve_cnn_failures_total", "CNN rung failures counted against the breaker, by cause.", "counter", m.cnnFailures)
	writeLabeled("serve_breaker_transitions_total", "Circuit breaker state transitions, by target state.", "counter", m.breakerTransitions)
	writeGauge("serve_breaker_state", "Circuit breaker state (0=closed, 1=open, 2=half-open).", m.breakerState.Value())
	writeCounter("serve_breaker_short_circuits_total", "Requests routed past the CNN rung while the breaker was open.", &m.breakerShortCircuits)

	writeCounter("serve_cache_hits_total", "Prediction cache hits (NN forward pass skipped).", &m.cacheHits)
	writeCounter("serve_cache_misses_total", "Prediction cache misses.", &m.cacheMisses)
	writeCounter("serve_cache_evictions_total", "Prediction cache LRU evictions.", &m.cacheEvictions)
	writeGauge("serve_cache_entries", "Current prediction cache entries.", m.cacheSize.Value())

	writeCounter("serve_batches_total", "Micro-batches dispatched to the worker pool.", &m.batches)
	writeCounter("serve_batch_jobs_total", "Prediction jobs processed through batches.", &m.batchJobs)
	fmt.Fprintf(&b, "# HELP serve_batch_size Jobs coalesced per micro-batch.\n# TYPE serve_batch_size histogram\n")
	m.batchSize.write(&b, "serve_batch_size", "")
	writeCounter("serve_queue_rejects_total", "Requests rejected because the batch queue was full.", &m.queueRejects)

	writeCounter("serve_model_reloads_total", "Successful model hot reloads.", &m.reloads)
	writeCounter("serve_model_reload_failures_total", "Rejected model reloads (validation failed; old model kept).", &m.reloadFails)
	writeGauge("serve_model_generation", "Generation of the live model (bumps on every reload).", m.modelGen.Value())
	writeGauge("serve_worker_panics_total", "Panics contained by the prediction worker pool.", m.workerPanics.Value())

	inflight := m.inflight.Load()
	if inflight < 0 {
		inflight = 0
	}
	writeGauge("serve_inflight_requests", "Predict requests currently in flight.", uint64(inflight))
	fmt.Fprintf(&b, "# HELP serve_uptime_seconds Seconds since the server started.\n# TYPE serve_uptime_seconds gauge\nserve_uptime_seconds %g\n", time.Since(m.started).Seconds())

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
