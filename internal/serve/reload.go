package serve

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/faultinject"
	"repro/internal/selector"
	"repro/internal/sparse"
)

// modelStamp identifies a model file revision for the mtime watcher.
type modelStamp struct {
	modTime time.Time
	size    int64
}

func stampOf(path string) (modelStamp, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return modelStamp{}, err
	}
	return modelStamp{modTime: fi.ModTime(), size: fi.Size()}, nil
}

// Reload re-reads cfg.ModelPath, validates it through the checksummed
// envelope loader, and — only on success — swaps it in atomically,
// bumps the model generation and resets the prediction cache. A file
// that fails validation (truncated, corrupt, wrong kind/version, or a
// selector that cannot predict) leaves the live model untouched, so a
// bad deploy artifact degrades to a logged error, never to downtime.
//
// Reload is safe to call concurrently (SIGHUP and the mtime watcher
// may race); loads are serialised and the generation counter moves
// once per successful swap.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	stamp, statErr := stampOf(s.cfg.ModelPath)

	sel, err := selector.LoadFile(s.cfg.ModelPath)
	if err == nil {
		if s.cfg.DisableFloat32 {
			sel.SetFloat32(false)
		}
		// Validation beyond decode: the selector must actually answer on
		// a probe matrix before it is allowed to take traffic. The chaos
		// suite injects a rejection here to model an artifact that decays
		// after validation.
		if perr := probe(sel); perr != nil {
			err = perr
		} else if ierr := faultinject.Inject(faultinject.PointReloadCorrupt); ierr != nil {
			err = fmt.Errorf("serve: model reload: %w", ierr)
		}
	}
	if err != nil {
		s.met.reloadFails.Inc()
		// A rejected reload is evidence against the CNN rung: the
		// artifact on disk is bad, so consecutive rejections walk the
		// breaker toward the decision-tree rung.
		s.breaker.Failure()
		s.logf("serve: model reload rejected: %v", err)
		return err
	}

	s.model.Store(sel)
	gen := s.gen.Add(1)
	s.met.modelGen.SetInt(gen)
	s.cache.Reset()
	s.met.cacheSize.Set(0)
	if statErr == nil {
		s.lastStamp = stamp
	}
	// A validated model is direct evidence the CNN rung is healthy
	// again: close the breaker instead of waiting out its cooldown.
	s.breaker.Reset()
	if gen > 1 {
		s.met.reloads.Inc()
		s.logf("serve: model reloaded from %s (generation %d)", s.cfg.ModelPath, gen)
	}
	return nil
}

// probe runs one prediction through a freshly loaded selector to catch
// models that decode but cannot infer (shape mismatches, poisoned
// weights producing non-finite output).
func probe(sel *selector.Selector) error {
	m := sparse.MustCOO(4, 4, []sparse.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	})
	if _, _, err := sel.Predict(m); err != nil {
		return fmt.Errorf("serve: loaded model failed probe prediction: %w", err)
	}
	return nil
}

// WatchModel polls the model file and hot-reloads when its mtime or
// size changes, until ctx is cancelled. It complements SIGHUP (which
// cmd/serve wires to Reload): the signal is for operators, the watch
// is for deploy pipelines that just replace the file. Failed reloads
// are logged and retried on the next change; the stamp is only
// advanced on success, so a transient half-visible write (non-atomic
// copy) is retried until the artifact validates.
func (s *Server) WatchModel(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			stamp, err := stampOf(s.cfg.ModelPath)
			if err != nil {
				continue // file temporarily missing mid-replace; retry
			}
			s.reloadMu.Lock()
			changed := stamp != s.lastStamp
			s.reloadMu.Unlock()
			if changed {
				s.Reload()
			}
		}
	}
}
