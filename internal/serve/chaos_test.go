package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/robust"
)

// The chaos suite: every test arms a named fault-injection point,
// drives the server through the induced failure, and asserts the
// degradation contract — requests are always answered (the right rung,
// never a 500, never a hang), the breaker trips and recovers, and the
// failure is visible in /metrics.

// newChaosServer is newTestServer plus fault-injection hygiene: the
// registry is cleared on cleanup so an armed point cannot leak into the
// next test. The cache is disabled so every request exercises the
// ladder.
func newChaosServer(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	t.Cleanup(faultinject.Reset)
	return newTestServer(t, func(c *Config) {
		c.CacheSize = 0
		c.BatchWindow = time.Millisecond
		if mutate != nil {
			mutate(c)
		}
	})
}

// labeledMetric extracts one labeled sample value, returning 0 when the
// series has not been created yet.
func labeledMetric(page, series string) float64 {
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, series+" ")), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

// TestChaosPanicsTripBreakerThenRecover is the acceptance scenario:
// a poisoned CNN panics on every request, the breaker trips after the
// configured threshold, the decision-tree rung keeps answering, and
// once the fault clears a half-open probe restores the CNN rung.
func TestChaosPanicsTripBreakerThenRecover(t *testing.T) {
	const cooldown = 200 * time.Millisecond
	s, _ := newChaosServer(t, func(c *Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldown = cooldown
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faultinject.Enable(faultinject.PointPredictPanic, faultinject.Fault{Panic: "poisoned weights"})

	// Every request during the outage is answered 200 from the tree
	// rung; the third failure trips the breaker.
	for i := 0; i < 3; i++ {
		code, resp, _ := postPredict(t, ts, matrixJSON(10+i, 1), "application/json")
		if code != http.StatusOK {
			t.Fatalf("request %d during outage: status %d, want 200", i, code)
		}
		if resp.Rung != rungDTree || !resp.FellBack {
			t.Fatalf("request %d during outage: rung %q fellback=%v, want dtree fallback", i, resp.Rung, resp.FellBack)
		}
		validFormat(t, resp.Format)
	}
	if st := s.breaker.State(); st != robust.BreakerOpen {
		t.Fatalf("breaker %v after %d consecutive panics, want open", st, 3)
	}

	// With the breaker open (or a probe re-panicking) the tree still
	// answers.
	code, resp, _ := postPredict(t, ts, matrixJSON(20, 1), "application/json")
	if code != http.StatusOK || resp.Rung != rungDTree {
		t.Fatalf("request while open: status %d rung %q", code, resp.Rung)
	}

	// Fault clears; after the cooldown the half-open probe finds the CNN
	// healthy and closes the breaker.
	faultinject.Disable(faultinject.PointPredictPanic)
	time.Sleep(cooldown + 50*time.Millisecond)
	code, resp, _ = postPredict(t, ts, matrixJSON(21, 1), "application/json")
	if code != http.StatusOK || resp.Rung != rungCNN || resp.FellBack {
		t.Fatalf("probe request: status %d rung %q fellback=%v, want healthy cnn", code, resp.Rung, resp.FellBack)
	}
	if st := s.breaker.State(); st != robust.BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}

	page := scrapeMetrics(t, ts)
	if v := labeledMetric(page, `serve_rung_total{rung="dtree"}`); v < 4 {
		t.Errorf("dtree rung count %g, want >= 4", v)
	}
	if v := labeledMetric(page, `serve_rung_total{rung="cnn"}`); v < 1 {
		t.Errorf("cnn rung count %g, want >= 1", v)
	}
	if v := labeledMetric(page, `serve_cnn_failures_total{cause="panic_or_other"}`); v < 3 {
		t.Errorf("panic failure count %g, want >= 3", v)
	}
	for _, to := range []string{"open", "half-open", "closed"} {
		if v := labeledMetric(page, `serve_breaker_transitions_total{to="`+to+`"}`); v < 1 {
			t.Errorf("no transition to %s recorded", to)
		}
	}
	if v := metricValue(t, page, "serve_breaker_state"); v != 0 {
		t.Errorf("breaker state gauge %g, want 0 (closed)", v)
	}
}

// TestChaosSlowModelTimesOut: a wedged forward pass is abandoned at
// PredictTimeout and counted against the breaker; once open, requests
// skip the stall entirely and answer fast from the tree.
func TestChaosSlowModelTimesOut(t *testing.T) {
	s, _ := newChaosServer(t, func(c *Config) {
		c.PredictTimeout = 30 * time.Millisecond
		c.BreakerThreshold = 2
		c.BreakerCooldown = time.Minute // no recovery inside this test
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faultinject.Enable(faultinject.PointPredictSlow, faultinject.Fault{Delay: 10 * time.Second})

	for i := 0; i < 2; i++ {
		code, resp, _ := postPredict(t, ts, matrixJSON(10+i, 1), "application/json")
		if code != http.StatusOK || resp.Rung != rungDTree {
			t.Fatalf("request %d against stalled model: status %d rung %q", i, code, resp.Rung)
		}
	}
	if st := s.breaker.State(); st != robust.BreakerOpen {
		t.Fatalf("breaker %v after repeated timeouts, want open", st)
	}

	// Open breaker: no PredictTimeout wait, the tree answers immediately.
	start := time.Now()
	code, resp, _ := postPredict(t, ts, matrixJSON(20, 1), "application/json")
	if code != http.StatusOK || resp.Rung != rungDTree {
		t.Fatalf("short-circuited request: status %d rung %q", code, resp.Rung)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("short-circuited request took %v", el)
	}

	page := scrapeMetrics(t, ts)
	if v := labeledMetric(page, `serve_cnn_failures_total{cause="timeout"}`); v != 2 {
		t.Errorf("timeout failure count %g, want 2", v)
	}
	if v := metricValue(t, page, "serve_breaker_short_circuits_total"); v < 1 {
		t.Errorf("short circuits %g, want >= 1", v)
	}
}

// TestChaosCorruptReloadTripsBreaker: consecutive rejected reloads (a
// bad artifact on disk) walk the breaker open; the tree rung carries
// traffic until a valid artifact lands, whose validated reload closes
// the breaker without waiting out the cooldown.
func TestChaosCorruptReloadTripsBreaker(t *testing.T) {
	s, model := newChaosServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = time.Minute
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := os.WriteFile(model, []byte("not a model artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Reload(); err == nil {
			t.Fatal("corrupt artifact accepted by reload")
		}
	}
	if st := s.breaker.State(); st != robust.BreakerOpen {
		t.Fatalf("breaker %v after rejected reloads, want open", st)
	}

	// The live (old-generation) model is intact, but the breaker routes
	// around it until the deploy is proven healthy again.
	code, resp, _ := postPredict(t, ts, matrixJSON(16, 1), "application/json")
	if code != http.StatusOK || resp.Rung != rungDTree {
		t.Fatalf("request during bad deploy: status %d rung %q", code, resp.Rung)
	}
	if !strings.Contains(resp.Reason, "breaker open") {
		t.Fatalf("reason %q does not name the breaker", resp.Reason)
	}

	// A valid artifact lands: the reload validates, swaps and force-
	// closes the breaker.
	saveTestModel(t, model, 2)
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if st := s.breaker.State(); st != robust.BreakerClosed {
		t.Fatalf("breaker %v after validated reload, want closed", st)
	}
	code, resp, _ = postPredict(t, ts, matrixJSON(17, 1), "application/json")
	if code != http.StatusOK || resp.Rung != rungCNN || resp.ModelGeneration != 2 {
		t.Fatalf("post-recovery request: status %d rung %q gen %d", code, resp.Rung, resp.ModelGeneration)
	}
}

// TestChaosQueueShedsWith429: with the lone worker parked on a test
// hook, overload is shed with 429 + Retry-After (never 500, never a
// hang), and the shedding is visible in /metrics.
func TestChaosQueueShedsWith429(t *testing.T) {
	hold := make(chan struct{})
	release := sync.OnceFunc(func() { close(hold) })
	s, _ := newChaosServer(t, func(c *Config) {
		c.Workers = 1
		c.BatchMax = 1
		c.QueueDepth = 1
	})
	entered := make(chan struct{}, 16)
	s.testHookPreBatch = func() {
		entered <- struct{}{}
		<-hold
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { release(); ts.Close() }()
	ts.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = 16

	// Park the worker, then pile on more requests than the queue holds.
	type result struct {
		code       int
		retryAfter string
	}
	results := make(chan result, 16)
	post := func(i int) {
		resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(matrixJSON(10+i, 1)))
		if err != nil {
			t.Error(err)
			results <- result{code: -1}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- result{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
	}
	go post(0)
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the worker")
	}
	const extra = 8
	for i := 1; i <= extra; i++ {
		go post(i)
	}

	// Shed responses arrive while the worker stays parked; held requests
	// drain only after release. Every answer is 200 or 429 — overload
	// must never surface as a 500.
	var sheds int
	collected := make([]result, 0, extra+1)
	deadline := time.After(10 * time.Second)
	collect := func(what string) {
		select {
		case r := <-results:
			collected = append(collected, r)
			if r.code == http.StatusTooManyRequests {
				sheds++
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s (%d of %d collected)", what, len(collected), extra+1)
		}
	}
	for sheds == 0 {
		collect("a shed response with the worker parked")
	}
	release()
	for len(collected) < extra+1 {
		collect("held requests to drain")
	}
	for _, r := range collected {
		switch r.code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			if r.retryAfter == "" {
				t.Error("shed response missing Retry-After header")
			}
		default:
			t.Errorf("overloaded server answered %d, want 200 or 429", r.code)
		}
	}
	if v := metricValue(t, scrapeMetrics(t, ts), "serve_queue_rejects_total"); v < float64(sheds) {
		t.Errorf("queue rejects %g, want >= %d", v, sheds)
	}
}

// TestChaosParserStallHonoursDeadline: a stalled parse (injected in the
// MatrixMarket entry loop) is cut off by the request budget — the
// client gets a 4xx, not a hung connection or a 500.
func TestChaosParserStallHonoursDeadline(t *testing.T) {
	s, _ := newChaosServer(t, func(c *Config) {
		c.RequestTimeout = 100 * time.Millisecond
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faultinject.Enable(faultinject.PointParseStall, faultinject.Fault{Delay: time.Minute})

	// Enough entries to cross the parser's periodic context check.
	var body bytes.Buffer
	const n = 5000
	body.WriteString("%%MatrixMarket matrix coordinate real general\n")
	body.WriteString("5000 5000 5000\n")
	for i := 1; i <= n; i++ {
		body.WriteString(strconv.Itoa(i) + " " + strconv.Itoa(i) + " 1\n")
	}

	start := time.Now()
	code, _, bad := postPredict(t, ts, body.Bytes(), "text/matrix-market")
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("stalled parse held the request %v", el)
	}
	if code < 400 || code >= 500 {
		t.Fatalf("stalled parse answered %d, want a 4xx", code)
	}
	if bad.Error == "" {
		t.Fatal("empty error body")
	}
	if got := faultinject.Fired(faultinject.PointParseStall); got == 0 {
		t.Fatal("stall point never fired — the test is not exercising the parser")
	}
}

// TestChaosAvailabilityNeverZero hammers a server whose CNN rung is
// permanently poisoned: every single response must be a success from a
// lower rung — availability cannot reach zero while any rung stands.
func TestChaosAvailabilityNeverZero(t *testing.T) {
	s, _ := newChaosServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = 10 * time.Millisecond // probe frequently, fail every probe
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ts.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = 32

	faultinject.Enable(faultinject.PointPredictPanic, faultinject.Fault{Panic: "permanently poisoned"})

	const clients, perClient = 16, 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				code, resp, bad, err := postPredictErr(ts, matrixJSON(8+(c+i)%13, 1+i%2), "application/json")
				if err != nil {
					t.Error(err)
					return
				}
				if code != http.StatusOK {
					t.Errorf("client %d req %d: status %d (%s)", c, i, code, bad.Error)
					return
				}
				if resp.Rung == rungCNN {
					t.Errorf("client %d req %d: poisoned CNN rung answered", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// The pool never saw a panic: injected panics are contained inside
	// the inference goroutine, so workers survive the whole hammering.
	if p := s.pool.Panics(); p != 0 {
		t.Errorf("worker pool recorded %d panics; faults leaked out of the CNN rung", p)
	}
	page := scrapeMetrics(t, ts)
	if v := labeledMetric(page, `serve_rung_total{rung="dtree"}`); v < clients*perClient {
		t.Errorf("dtree rung answered %g of %d requests", v, clients*perClient)
	}
}
