package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/robust"
)

// The SLO-driven overload-control plane (enabled by Config.SLOTargetP99).
//
// The fixed bounded queue it replaces had the classic failure mode:
// under sustained overload the queue fills with requests that will
// expire before service, every admitted request times out late instead
// of shedding early, and the CNN rung burns CPU on answers nobody is
// still waiting for. This plane closes four loops instead:
//
//   - admission: a robust.Limiter adapts the number of jobs allowed in
//     the system (queued + executing) to observed job latency against
//     the SLO target — the queue is exactly as deep as the SLO can
//     afford, not a compile-time guess.
//   - deadline awareness: a request whose remaining budget cannot cover
//     the expected queue wait plus service time is shed at admission
//     (429 + Retry-After) rather than admitted to time out late; jobs
//     that expire anyway are evicted unexecuted at dequeue.
//   - autosizing: the effective batch-worker parallelism tracks the
//     limiter, so a shrinking limit concentrates work on fewer workers
//     (coherent batches) and a recovering one fans back out.
//   - brownout: sustained SLO burn or shedding proactively steps the
//     ladder cnn→dtree before the breaker ever trips — the decision
//     gets cheaper exactly when cycles are the scarce resource — and
//     steps back once offered load fits CNN capacity again.
//
// Everything here is advisory capacity control, never correctness: with
// SLOTargetP99 zero the server behaves exactly as before (fixed queue,
// static Retry-After).

// errDeadlineTooTight sheds a request at admission because its
// remaining deadline budget cannot cover the expected queue wait.
var errDeadlineTooTight = errors.New("serve: deadline cannot cover expected queue wait")

// errExpired evicts a queued job whose context died (deadline spent or
// client hung up) before a worker picked it up.
var errExpired = errors.New("serve: request expired in queue")

// Brownout controller tuning. Intervals are evaluate() cadence; the
// engage/recover streaks are the hysteresis that keeps a borderline
// load from flapping the rung.
const (
	brownoutInterval = 500 * time.Millisecond
	brownoutEngage   = 2 // consecutive hot intervals before engaging
	brownoutRecover  = 4 // consecutive cool intervals before recovery
)

// admission is the per-server overload-control state.
type admission struct {
	target  time.Duration // the configured SLO (p99) target
	workers int           // configured worker ceiling
	batch   int           // configured batch size cap
	lim     *robust.Limiter
	tracker *obs.SLOTracker
	gate    *workerGate

	onBrownout func(engaged bool) // transition hook (metrics + log)

	mu       sync.Mutex
	winStart time.Time
	// Interval accumulators for the brownout controller.
	admits, sheds         int
	completions, overSLO  int
	drain                 float64 // jobs/sec completion rate (EWMA)
	cnnEWMA               float64 // seconds per CNN forward (EWMA; stale during brownout by design)
	engaged               bool
	hotStreak, coolStreak int

	now func() time.Time // injectable clock (tests)
}

func newAdmission(cfg Config) *admission {
	a := &admission{
		target:  cfg.SLOTargetP99,
		workers: cfg.Workers,
		batch:   cfg.BatchMax,
		now:     time.Now,
	}
	// The limiter bounds jobs in the system. Its latency target is half
	// the p99 SLO: the limit tracks *mean* job latency, and holding the
	// mean at half the target is what leaves tail room for the p99 to
	// land inside it. Ceiling is the legacy fixed queue depth, so the
	// adaptive plane can never admit more than the old plane did.
	a.lim = robust.NewLimiter(robust.LimiterConfig{
		Target:    cfg.SLOTargetP99 / 2,
		Floor:     2,
		Ceiling:   cfg.QueueDepth,
		Initial:   cfg.QueueDepth,
		Window:    brownoutInterval / 2,
		IdleReset: 30 * time.Second,
	})
	a.tracker = obs.NewSLOTracker(obs.SLOConfig{
		Target:  cfg.SLOTargetP99,
		Window:  5 * time.Second,
		Buckets: 10,
	})
	a.gate = newWorkerGate(a.effWorkers)
	a.winStart = a.now()
	return a
}

// admit decides whether one prediction job may enter the system. nil
// admits (the caller must pair it with finish via the job's release);
// errOverloaded and errDeadlineTooTight shed.
func (a *admission) admit(ctx context.Context) error {
	if !a.lim.Acquire() {
		a.shed()
		return errOverloaded
	}
	// Deadline-aware enqueue: expected time through the system is the
	// backlog (this job included) over the drain rate. A request that
	// cannot finish inside its own deadline is refused while it is still
	// cheap to refuse.
	if dl, ok := ctx.Deadline(); ok {
		if wait := a.expectedWait(); wait > 0 && time.Until(dl) < wait {
			a.lim.Release(0, false)
			a.shed()
			return errDeadlineTooTight
		}
	}
	a.mu.Lock()
	a.admits++
	a.evaluateLocked()
	a.mu.Unlock()
	return nil
}

// finish records one admitted job leaving the system: latency is
// enqueue-to-answer, ok means it produced an answer (sheds, evictions
// and shutdowns pass false).
func (a *admission) finish(latency time.Duration, ok bool) {
	a.lim.Release(latency, ok)
	a.tracker.Observe(latency, ok)
	a.mu.Lock()
	a.completions++
	if !ok || latency > a.target {
		a.overSLO++
	}
	a.evaluateLocked()
	a.mu.Unlock()
}

// shed records one refused request (admission or deadline) for the
// burn and brownout accounting.
func (a *admission) shed() {
	a.tracker.Observe(0, false)
	a.mu.Lock()
	a.sheds++
	a.evaluateLocked()
	a.mu.Unlock()
}

// noteCNN feeds the CNN-rung service-time estimate (seconds per
// forward). It deliberately goes stale during brownout — it remembers
// what CNN work cost, which is what recovery has to afford.
func (a *admission) noteCNN(sec float64) {
	a.mu.Lock()
	if a.cnnEWMA == 0 {
		a.cnnEWMA = sec
	} else {
		a.cnnEWMA = 0.8*a.cnnEWMA + 0.2*sec
	}
	a.mu.Unlock()
}

// expectedWait estimates time-through-system for a request admitted
// now: the jobs already in the system plus this one, over the drain
// rate. Zero when the system is empty or the estimate has no data —
// the check must fail open, both because an empty system has nothing
// to wait behind and because admitting is the only way a stale drain
// estimate ever heals. (An earlier version added a whole-latency EWMA
// here; after a collapse it sat above every client deadline and, with
// nothing admitted, nothing ever refreshed it — the server wedged into
// shedding 100% of deadline-carrying traffic forever.)
func (a *admission) expectedWait() time.Duration {
	// The caller holds its own limiter slot, so InFlight already counts
	// the candidate: <= 1 means it is alone in the system.
	backlog := float64(a.lim.InFlight())
	if backlog <= 1 {
		return 0
	}
	a.mu.Lock()
	drain := a.drain
	a.mu.Unlock()
	if drain <= 0 {
		return 0
	}
	return time.Duration(backlog / drain * float64(time.Second))
}

// retryAfterSeconds derives Retry-After from the current drain rate:
// how long until the present backlog has drained. Clamped to [1, 10]
// so a cold estimate neither hammers nor strands clients.
func (a *admission) retryAfterSeconds() int {
	backlog := float64(a.lim.InFlight())
	a.mu.Lock()
	drain := a.drain
	a.mu.Unlock()
	sec := 1
	if drain > 0 {
		sec = int(math.Ceil(backlog / drain))
	}
	if sec < 1 {
		sec = 1
	}
	if sec > 10 {
		sec = 10
	}
	return sec
}

// brownedOut reports whether the ladder should answer from the dtree
// rung for capacity (not health) reasons.
func (a *admission) brownedOut() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.evaluateLocked()
	return a.engaged
}

// effWorkers is the autosized batch-worker parallelism: enough workers
// to execute the limiter's current allowance in BatchMax-sized batches,
// clamped to the configured pool. As the limit collapses, work
// concentrates onto fewer workers; as it recovers, the fan-out returns.
func (a *admission) effWorkers() int {
	n := (a.lim.Limit() + a.batch - 1) / a.batch
	if n < 1 {
		n = 1
	}
	if n > a.workers {
		n = a.workers
	}
	return n
}

// evaluateLocked closes the current brownout interval when due and
// moves the engaged state. Caller holds a.mu.
func (a *admission) evaluateLocked() {
	t := a.now()
	elapsed := t.Sub(a.winStart)
	if elapsed < brownoutInterval {
		return
	}
	sec := elapsed.Seconds()

	// Drain rate: EWMA of completions/sec. Only a completion or a genuine
	// stall (jobs in the system, none finishing) moves it — a shed-only
	// interval says nothing about how fast the system drains, and letting
	// it decay the estimate is the other half of the shed death-spiral
	// (sheds → drain decays → expected wait grows → more sheds).
	inst := float64(a.completions) / sec
	switch {
	case a.completions > 0:
		if a.drain == 0 {
			a.drain = inst
		} else {
			a.drain = 0.5*a.drain + 0.5*inst
		}
	case a.lim.InFlight() > 0:
		a.drain *= 0.5
	}

	offered := float64(a.admits+a.sheds) / sec
	shedFrac := 0.0
	if n := a.admits + a.sheds; n > 0 {
		shedFrac = float64(a.sheds) / float64(n)
	}
	overFrac := 0.0
	if a.completions > 0 {
		overFrac = float64(a.overSLO) / float64(a.completions)
	}
	// CNN capacity in jobs/sec, from the (possibly stale) forward-pass
	// estimate and the autosized worker count.
	cnnCap := math.Inf(1)
	if a.cnnEWMA > 0 {
		cnnCap = float64(a.effWorkers()) / a.cnnEWMA
	}

	// Hot: the SLO is burning (sheds or blown latencies) or offered
	// load visibly exceeds what the CNN rung can serve. Cool: quiet on
	// every axis AND the offered load would fit the CNN again.
	hot := shedFrac > 0.10 || overFrac > 0.50 || offered > 1.5*cnnCap
	cool := shedFrac < 0.05 && overFrac < 0.25 && (math.IsInf(cnnCap, 1) || offered < 0.7*cnnCap)

	switch {
	case hot:
		a.hotStreak++
		a.coolStreak = 0
	case cool:
		a.coolStreak++
		a.hotStreak = 0
	default:
		a.hotStreak, a.coolStreak = 0, 0
	}
	if !a.engaged && a.hotStreak >= brownoutEngage {
		a.engaged = true
		a.hotStreak = 0
		if a.onBrownout != nil {
			a.onBrownout(true)
		}
	} else if a.engaged && a.coolStreak >= brownoutRecover {
		a.engaged = false
		a.coolStreak = 0
		if a.onBrownout != nil {
			a.onBrownout(false)
		}
	}

	a.winStart = t
	a.admits, a.sheds, a.completions, a.overSLO = 0, 0, 0, 0
}

// workerGate is a dynamic semaphore: at most limit() batches execute
// concurrently, where limit is re-read on every acquire so the
// autosizer moves it without waking anyone.
type workerGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active int
	closed bool
	limit  func() int
}

func newWorkerGate(limit func() int) *workerGate {
	g := &workerGate{limit: limit}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until a slot under the current limit frees (or the
// gate closes — false means shutting down).
func (g *workerGate) acquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.closed {
		lim := g.limit()
		if lim < 1 {
			lim = 1
		}
		if g.active < lim {
			g.active++
			return true
		}
		g.cond.Wait()
	}
	return false
}

func (g *workerGate) release() {
	g.mu.Lock()
	g.active--
	g.mu.Unlock()
	g.cond.Broadcast()
}

// close unblocks all waiters permanently (shutdown).
func (g *workerGate) close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.cond.Broadcast()
}
