package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/selector"
	"repro/internal/sparse"
)

// wantTrace reports whether the client asked for the per-stage span
// block in the response body (?trace=1 or an X-Trace: 1 header).
func wantTrace(r *http.Request) bool {
	if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
		return true
	}
	v := r.Header.Get("X-Trace")
	return v == "1" || v == "true"
}

// predictRequest is the JSON request body for POST /v1/predict:
// explicit COO triplets. Alternatively the body may be a raw Matrix
// Market document (Content-Type text/matrix-market, or any body whose
// first bytes are the %%MatrixMarket banner).
type predictRequest struct {
	Rows    int          `json:"rows"`
	Cols    int          `json:"cols"`
	Entries [][3]float64 `json:"entries"` // [row, col, value]
	// SpmvSeconds optionally reports how long the client's own SpMV
	// took for this pattern in its current format — closing the
	// feedback loop with a measured timing instead of the server's
	// cachesim estimate. Ignored (beyond capture) for prediction.
	SpmvSeconds float64 `json:"spmv_seconds,omitempty"`
}

// response is the JSON answer for POST /v1/predict. Rung reports which
// ladder layer produced the answer: "cnn", "dtree" or "csr". TraceID
// always carries the request's span ID (it is also the X-Trace-Id
// header); the per-stage Trace block is included when the client asks
// for it with ?trace=1. Coalesced marks an answer shared with an
// in-flight computation for the same fingerprint (a router retry or
// hedge that did not cost a second forward pass).
type response struct {
	Format          string             `json:"format"`
	Probs           map[string]float64 `json:"probs,omitempty"`
	FellBack        bool               `json:"fell_back"`
	Reason          string             `json:"reason,omitempty"`
	Cached          bool               `json:"cached"`
	Coalesced       bool               `json:"coalesced,omitempty"`
	Rung            string             `json:"rung"`
	ModelGeneration uint64             `json:"model_generation"`
	TraceID         string             `json:"trace_id,omitempty"`
	Trace           []obs.Span         `json:"trace,omitempty"`
}

// predictMeta carries per-request cluster context between the handler
// and predictOne: the router's hints in, the cache/peer outcomes back
// out (they become the X-Cache-Status and X-Peer-Fill headers).
type predictMeta struct {
	owner       string  // X-Shard-Owner hint ("" = none)
	retried     bool    // X-Retry-Attempt named a retry or hedge
	cacheStatus string  // "hit", "peer" or "miss"
	peerOutcome string  // "hit", "miss", "timeout", "error" ("" = not attempted)
	coalesced   bool    // attached to an in-flight duplicate
	clientSec   float64 // client-reported SpMV seconds (0 = none)
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

func makeResponse(p selector.Prediction, gen uint64, cached bool, rung string) response {
	r := response{
		Format:          p.Format.String(),
		FellBack:        p.FellBack,
		Cached:          cached,
		Rung:            rung,
		ModelGeneration: gen,
	}
	if p.Reason != nil {
		r.Reason = p.Reason.Error()
	}
	if p.Probs != nil {
		r.Probs = make(map[string]float64, len(p.Probs))
		for f, v := range p.Probs {
			r.Probs[f.String()] = v
		}
	}
	return r
}

// Handler returns the server's HTTP routes. It is exposed separately
// from Serve so tests (and embedders) can mount the service on any
// listener or mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/cache", s.handleCacheLookup)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := http.StatusOK
	// Cluster hints from the router: which replica owns this
	// fingerprint's cache shard, and whether this request is a retry or
	// hedge of one the router already sent somewhere (retried requests
	// are labeled separately in serve_requests_total so fleet-level
	// request accounting is never double-counted by failover).
	meta := &predictMeta{
		owner:   strings.TrimSuffix(r.Header.Get("X-Shard-Owner"), "/"),
		retried: isRetryAttempt(r.Header.Get("X-Retry-Attempt")),
	}
	// Every predict request gets a trace: the span ID goes out as the
	// X-Trace-Id header (success or failure), the per-stage spans are
	// recorded along the pipeline, and the finished trace lands in the
	// /debug/traces ring on the admin listener.
	tr := obs.NewTrace()
	w.Header().Set("X-Trace-Id", tr.ID())
	defer func() {
		s.met.requestRetriable("predict", code, start, meta.retried)
		s.traces.Finish(tr, strconv.Itoa(code))
	}()

	if r.Method != http.MethodPost {
		code = http.StatusMethodNotAllowed
		writeJSON(w, code, errorResponse{Error: "POST only"})
		return
	}
	// The draining check and the inflight registration are what make
	// graceful shutdown sound: Shutdown flips draining first, then
	// waits for the inflight group, so every accepted request drains
	// and every later one gets an immediate 503.
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	if s.draining.Load() {
		code = http.StatusServiceUnavailable
		writeJSON(w, code, errorResponse{Error: "server is draining"})
		return
	}

	// The per-request deadline budget: parse, queueing and prediction
	// together must finish inside RequestTimeout, so one slow request
	// cannot occupy a worker indefinitely. A router-propagated client
	// deadline (X-Request-Deadline, unix milliseconds) tightens the
	// budget further — the replica then sheds work the client has
	// already given up on instead of computing answers into the void.
	budget := s.cfg.RequestTimeout
	if remaining, ok := headerDeadline(r); ok {
		if remaining <= 0 {
			code = http.StatusTooManyRequests
			s.met.admissionRejects.With(`reason="expired"`).Inc()
			if s.adm != nil {
				s.adm.shed()
			}
			w.Header().Set("Retry-After", s.retryAfter())
			writeJSON(w, code, errorResponse{Error: "request deadline already expired"})
			return
		}
		if remaining < budget {
			budget = remaining
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	ctx = obs.WithTrace(ctx, tr)

	parseStart := time.Now()
	m, clientSec, err := s.parseMatrix(ctx, r)
	meta.clientSec = clientSec
	tr.ObserveSpan("parse", parseStart)
	if err != nil {
		code = ingestStatus(err)
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}

	resp, err := s.predictOne(ctx, m, meta)
	if meta.cacheStatus != "" {
		w.Header().Set("X-Cache-Status", meta.cacheStatus)
	}
	if meta.peerOutcome != "" {
		w.Header().Set("X-Peer-Fill", meta.peerOutcome)
	}
	switch {
	case err == nil:
		resp.Coalesced = meta.coalesced
		resp.TraceID = tr.ID()
		if wantTrace(r) {
			resp.Trace = tr.Spans()
		}
		writeJSON(w, code, resp)
	case errors.Is(err, errOverloaded), errors.Is(err, errDeadlineTooTight), errors.Is(err, errExpired):
		// Shed, not failed: tell the client when to come back. With the
		// overload plane on, Retry-After is derived from the observed
		// queue drain rate instead of a constant — clients back off for
		// as long as the backlog actually needs.
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, code, errorResponse{Error: err.Error()})
	case errors.Is(err, errShutdown):
		code = http.StatusServiceUnavailable
		writeJSON(w, code, errorResponse{Error: err.Error()})
	default: // client went away or request budget spent mid-wait
		code = http.StatusServiceUnavailable
		writeJSON(w, code, errorResponse{Error: err.Error()})
	}
}

// IngestStatus maps an ingestion failure onto the typed status
// taxonomy: 413 for resource-cap violations, 422 for well-formed but
// unsupported documents, 400 for everything malformed. Exported so the
// cluster router answers decode failures with the same codes a replica
// would.
func IngestStatus(err error) int {
	switch {
	case errors.Is(err, sparse.ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, sparse.ErrUnsupported):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

func ingestStatus(err error) int { return IngestStatus(err) }

// headerDeadline reads the router-propagated client deadline
// (X-Request-Deadline, unix milliseconds) and returns the remaining
// budget. ok is false when the header is absent or malformed — an
// unparseable deadline is ignored, never a rejection.
func headerDeadline(r *http.Request) (time.Duration, bool) {
	v := r.Header.Get("X-Request-Deadline")
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	return time.Until(time.UnixMilli(ms)), true
}

// retryAfter renders the Retry-After header for a shed response:
// drain-rate derived when the overload plane is on, the legacy constant
// otherwise.
func (s *Server) retryAfter() string {
	if s.adm != nil {
		return strconv.Itoa(s.adm.retryAfterSeconds())
	}
	return "1"
}

// admitReasonLabel classifies an admission rejection for the
// serve_admission_rejects_total counter.
func admitReasonLabel(err error) string {
	if errors.Is(err, errDeadlineTooTight) {
		return `reason="deadline"`
	}
	return `reason="queue"`
}

// isRetryAttempt reports whether an X-Retry-Attempt header value names
// a retry or hedge (attempt number >= 1; the first attempt is 0 or an
// absent header).
func isRetryAttempt(v string) bool {
	if v == "" {
		return false
	}
	n, err := strconv.Atoi(v)
	return err == nil && n >= 1
}

// DecodeMatrix decodes a request body (already read into memory) as
// JSON COO triplets or a Matrix Market document, bounded by lim. Every
// failure wraps one of the typed sparse ingestion errors (or reads as
// plain malformation) for IngestStatus to map onto 400/413/422. It is
// shared between the replica's predict handler and the cluster router,
// which must parse the matrix anyway to compute the shard fingerprint.
func DecodeMatrix(ctx context.Context, data []byte, contentType string, lim sparse.Limits) (*sparse.COO, error) {
	m, _, err := DecodeMatrixMeta(ctx, data, contentType, lim)
	return m, err
}

// DecodeMatrixMeta is DecodeMatrix plus the request's feedback
// metadata: the client-reported SpMV seconds (0 when absent; Matrix
// Market bodies cannot carry one). Non-finite or negative timings are
// discarded rather than rejected — the matrix, not the telemetry, is
// the request.
func DecodeMatrixMeta(ctx context.Context, data []byte, contentType string, lim sparse.Limits) (*sparse.COO, float64, error) {
	if strings.Contains(contentType, "matrix-market") || bytes.HasPrefix(bytes.TrimSpace(data), []byte("%%MatrixMarket")) {
		m, err := sparse.ReadMatrixMarketLimits(ctx, bytes.NewReader(data), lim)
		if err != nil {
			return nil, 0, fmt.Errorf("parsing Matrix Market body: %w", err)
		}
		return m, 0, nil
	}
	var req predictRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, 0, fmt.Errorf("parsing JSON body: %w", err)
	}
	// The JSON path honours the same resource budget as the Matrix
	// Market reader.
	if lim.MaxRows > 0 && req.Rows > lim.MaxRows {
		return nil, 0, fmt.Errorf("%w: %d rows exceeds cap %d", sparse.ErrTooLarge, req.Rows, lim.MaxRows)
	}
	if lim.MaxCols > 0 && req.Cols > lim.MaxCols {
		return nil, 0, fmt.Errorf("%w: %d cols exceeds cap %d", sparse.ErrTooLarge, req.Cols, lim.MaxCols)
	}
	if lim.MaxNNZ > 0 && len(req.Entries) > lim.MaxNNZ {
		return nil, 0, fmt.Errorf("%w: %d entries exceeds cap %d", sparse.ErrTooLarge, len(req.Entries), lim.MaxNNZ)
	}
	entries := make([]sparse.Entry, len(req.Entries))
	for i, e := range req.Entries {
		r0, c0 := int(e[0]), int(e[1])
		if float64(r0) != e[0] || float64(c0) != e[1] {
			return nil, 0, fmt.Errorf("entry %d: non-integer coordinates (%g,%g)", i, e[0], e[1])
		}
		entries[i] = sparse.Entry{Row: r0, Col: c0, Val: e[2]}
	}
	m, err := sparse.NewCOO(req.Rows, req.Cols, entries)
	if err != nil {
		return nil, 0, fmt.Errorf("building matrix: %w", err)
	}
	clientSec := req.SpmvSeconds
	if clientSec < 0 || clientSec != clientSec || clientSec > 1e9 { // negative, NaN or absurd
		clientSec = 0
	}
	return m, clientSec, nil
}

// parseMatrix reads and decodes the request body, bounded by
// MaxBodyBytes and cfg.Limits.
func (s *Server) parseMatrix(ctx context.Context, r *http.Request) (*sparse.COO, float64, error) {
	body := io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1)
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, 0, fmt.Errorf("reading body: %w", err)
	}
	if int64(len(data)) > s.cfg.MaxBodyBytes {
		return nil, 0, fmt.Errorf("%w: body exceeds %d bytes", sparse.ErrTooLarge, s.cfg.MaxBodyBytes)
	}
	return DecodeMatrixMeta(ctx, data, r.Header.Get("Content-Type"), s.cfg.Limits)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
	s.met.request("healthz", http.StatusOK, start)
}

// handleReadyz reports readiness with degradation detail: a healthy
// replica answers "ready rung=cnn", one running on the decision-tree
// rung behind an open breaker answers 200 "ready rung=dtree" (degraded
// but still worth routing to), and a replica that is draining, has no
// model, or is down to the CSR floor answers 503. The router's active
// prober parses the rung to distinguish healthy from degraded replicas
// without taking them out of rotation.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := http.StatusOK
	var msg string
	rung := s.CurrentRung()
	switch {
	case !s.Ready():
		code = http.StatusServiceUnavailable
		msg = "not ready\n"
	case rung == rungCSR:
		// Hard-down: breaker open and no tree rung — answers would be
		// the unconditional CSR floor, no better than any other
		// replica's worst case. Shed active routing.
		code = http.StatusServiceUnavailable
		msg = "degraded rung=csr\n"
	default:
		msg = "ready rung=" + rung + "\n"
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	io.WriteString(w, msg)
	s.met.request("readyz", code, start)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WriteTo(w)
	s.met.request("metrics", http.StatusOK, start)
}

// formatLabel renders the label set for a served prediction.
func formatLabel(f sparse.Format) string {
	return fmt.Sprintf("format=%q", f.String())
}

// reasonLabel classifies a fallback cause into a bounded label set
// (unbounded label values are a Prometheus cardinality hazard).
func reasonLabel(err error) string {
	switch {
	case errors.Is(err, selector.ErrNoModel):
		return `reason="no_model"`
	case errors.Is(err, selector.ErrBadInput):
		return `reason="bad_input"`
	case errors.Is(err, selector.ErrBadOutput):
		return `reason="bad_output"`
	default:
		return `reason="other"`
	}
}
