// Package serve is the online inference tier: an HTTP JSON service
// that turns the trained CNN format selector into a long-running,
// hot-reloadable prediction server. It is the production counterpart
// of the one-shot cmd/predict pipeline and the foundation the scaling
// roadmap (sharding, multi-model, GPU-profile selectors) builds on.
//
// Architecture, front to back:
//
//   - HTTP layer: POST /v1/predict (COO triplets as JSON, or a raw
//     Matrix Market body), GET /healthz, GET /readyz, GET /metrics
//     (Prometheus text format).
//   - Prediction cache: an LRU keyed by sparse.Fingerprint — a
//     position-only pattern hash — so structurally identical matrices
//     skip the CNN forward pass entirely.
//   - Micro-batching dispatcher: concurrent requests are coalesced
//     into bounded batches (BatchMax jobs or BatchWindow, whichever
//     first) and executed on a robust.Pool of panic-contained workers.
//   - Model slot: an atomic.Pointer[selector.Selector] swapped by
//     Reload after the candidate file passes the checksummed-envelope
//     loader, so a corrupt deploy artifact can never take over and
//     in-flight requests always see a complete model.
//   - Degradation ladder (ladder.go): a circuit breaker guards the CNN
//     rung; consecutive panics, timeouts or reload rejections route
//     traffic to the decision-tree baseline rung and, below it, the
//     always-CSR floor — a sick model degrades answer quality, never
//     availability. Responses and /metrics report which rung answered.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtree"
	"repro/internal/feedback"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/selector"
	"repro/internal/sparse"
)

// Config parameterises a Server.
type Config struct {
	// ModelPath is the checksummed model artifact (selector.SaveFile
	// output). It is re-read on Reload.
	ModelPath string
	// BatchMax bounds jobs per micro-batch (default 16).
	BatchMax int
	// BatchWindow is how long the dispatcher waits to fill a batch
	// after the first job arrives (default 2ms).
	BatchWindow time.Duration
	// Workers sizes the prediction pool (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs waiting for dispatch; beyond it requests
	// are rejected with 503 (default 4*BatchMax*Workers).
	QueueDepth int
	// CacheSize is the LRU prediction cache capacity in entries
	// (default 1024; 0 disables, negative means default).
	CacheSize int
	// MaxBodyBytes caps accepted request bodies (default 32 MiB).
	MaxBodyBytes int64
	// Limits is the resource budget for ingesting one request body
	// (dimension, nonzero and line-length caps). The zero value means
	// sparse.DefaultLimits — the service never runs uncapped.
	Limits sparse.Limits
	// RequestTimeout is the per-request deadline budget covering parse,
	// queueing and prediction (default 15s).
	RequestTimeout time.Duration
	// SLOTargetP99 enables the SLO-driven overload-control plane (see
	// overload.go): adaptive admission sized to keep p99 job latency
	// inside this target, deadline-aware enqueue, autosized batch
	// workers, adaptive Retry-After and the brownout rung-step. Zero
	// disables the plane entirely — fixed queue, static Retry-After —
	// which is the zero-value default.
	SLOTargetP99 time.Duration
	// PredictTimeout bounds one CNN inference before the ladder counts
	// it as a failure and degrades (default 2s).
	PredictTimeout time.Duration
	// BreakerThreshold is how many consecutive CNN failures (panics,
	// timeouts, reload rejections) trip the breaker onto the
	// decision-tree rung (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker waits before
	// letting a half-open probe test the CNN again (default 15s).
	BreakerCooldown time.Duration
	// DTreePath optionally names a trained decision-tree artifact
	// (dtree.SaveFile output) for the degraded rung. Empty means the
	// built-in heuristic tree over the model's format set.
	DTreePath string
	// SelfURL is this replica's advertised base URL in a cluster
	// (http://host:port). It is how the replica recognises itself in the
	// router's X-Shard-Owner hint: a request whose hinted owner is a
	// *different* replica triggers a bounded peer cache-fill. Empty
	// means "derive from the listener address" when ListenAndServe/Serve
	// is used; a replica that never learns its own URL skips peer fill
	// entirely (fail open to local compute).
	SelfURL string
	// PeerFillTimeout bounds one peer cache-fill round trip (default
	// 150ms). The fill is an optimisation, never a dependency: any
	// timeout or error falls open to local compute inside the request's
	// own budget.
	PeerFillTimeout time.Duration
	// FeedbackDir, when non-empty, enables feedback capture: every
	// answered prediction is appended to a crash-safe JSONL log in this
	// directory (see internal/feedback), off the request path. The
	// feedback_* metric series appear on /metrics when enabled.
	FeedbackDir string
	// FeedbackMaxSegmentBytes / FeedbackMaxSegmentAge tune feedback
	// segment rotation (0 = the feedback package defaults).
	FeedbackMaxSegmentBytes int64
	FeedbackMaxSegmentAge   time.Duration
	// FeedbackMaxPatternNNZ caps which matrices embed their COO pattern
	// in feedback entries (0 = default; negative disables patterns).
	FeedbackMaxPatternNNZ int
	// FeedbackEstimates replays an SpMV through the cache simulator for
	// entries without a client-reported timing.
	FeedbackEstimates bool
	// ShadowSampleN mirrors every N-th prediction through the loaded
	// shadow model (see shadow.go); 0 disables mirroring, 1 mirrors
	// everything.
	ShadowSampleN int
	// DisableFloat32 forces every CNN inference through the reference
	// float64 path instead of the compiled float32 engine. The engine is
	// the default; this is the operator escape hatch for bit-exact
	// comparison against offline float64 evaluation.
	DisableFloat32 bool
	// Log receives operational lines (nil = silent).
	Log io.Writer
}

func (c *Config) defaults() {
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.BatchMax * c.Workers
	}
	if c.CacheSize < 0 {
		c.CacheSize = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Limits == (sparse.Limits{}) {
		c.Limits = sparse.DefaultLimits()
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.PredictTimeout <= 0 {
		c.PredictTimeout = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 15 * time.Second
	}
	if c.PeerFillTimeout <= 0 {
		c.PeerFillTimeout = 150 * time.Millisecond
	}
}

// Server is the online format-selection service.
type Server struct {
	cfg Config

	model atomic.Pointer[selector.Selector]
	gen   atomic.Uint64 // model generation, bumped per successful (re)load

	// The degradation ladder (see ladder.go): breaker guards the CNN
	// rung, dtree is the middle rung, CSR the floor.
	breaker *robust.Breaker
	dtree   *dtree.Selector

	cache   *predictionCache
	met     *metrics
	traces  *obs.TraceLog
	pool    *robust.Pool
	jobs    chan *job
	adm     *admission // overload-control plane (nil when SLOTargetP99 is 0)
	quit    chan struct{}
	dispWG  sync.WaitGroup
	httpSrv atomic.Pointer[http.Server]

	// Single-flight window: fingerprints with a computation already in
	// flight, so a duplicate request (a router retry or hedge, or two
	// clients posting the same pattern) attaches to the running job
	// instead of computing twice. Enabled with the cache (it is the
	// cache's in-flight edge).
	inflightMu sync.Mutex
	inflightFP map[uint64]*call

	// Cluster identity and the peer cache-fill client (see peer.go).
	selfURL    atomic.Pointer[string]
	peerClient *http.Client

	draining atomic.Bool
	inflight sync.WaitGroup
	shutOnce sync.Once

	// reload bookkeeping (see reload.go).
	reloadMu  sync.Mutex
	lastStamp modelStamp

	// Feedback capture (nil when Config.FeedbackDir is empty) and the
	// shadow-deployment slot (see shadow.go).
	fb        *feedback.Logger
	shadow    atomic.Pointer[shadowState]
	shadowSeq atomic.Uint64

	// testHookPreBatch, when set, runs in the worker before a batch is
	// predicted — tests use it to hold requests in flight.
	testHookPreBatch func()
}

// New builds a Server and loads the initial model from cfg.ModelPath.
// A missing or corrupt artifact is a construction error: a server that
// cannot predict should fail its deploy, not start degraded (Reload
// exists for recovery after startup).
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	s := &Server{
		cfg:        cfg,
		cache:      newPredictionCache(cfg.CacheSize),
		met:        newMetrics(),
		traces:     obs.NewTraceLog(256),
		jobs:       make(chan *job, cfg.QueueDepth),
		quit:       make(chan struct{}),
		inflightFP: map[uint64]*call{},
		peerClient: &http.Client{Timeout: 2 * cfg.PeerFillTimeout},
	}
	if cfg.SelfURL != "" {
		self := strings.TrimSuffix(cfg.SelfURL, "/")
		s.selfURL.Store(&self)
	}
	s.pool = robust.NewPool(cfg.Workers, cfg.Workers, func(pe *robust.PanicError) {
		s.logf("serve: contained worker panic: %v", pe.Value)
		s.met.workerPanics.SetInt(s.pool.Panics())
	})
	s.met.instrumentPool(s.pool)
	s.breaker = robust.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	s.breaker.OnTransition = func(from, to robust.BreakerState) {
		s.met.breakerState.SetInt(uint64(to))
		s.met.breakerTransitions.With(fmt.Sprintf("to=%q", to.String())).Inc()
		s.logf("serve: breaker %s -> %s", from, to)
	}
	s.met.instrumentBreaker(s.breaker)
	if cfg.SLOTargetP99 > 0 {
		s.adm = newAdmission(cfg)
		s.adm.onBrownout = func(engaged bool) {
			if engaged {
				s.met.brownoutState.SetInt(1)
				s.met.brownoutTransitions.With(`to="engaged"`).Inc()
				s.logf("serve: brownout engaged (sustained SLO burn; stepping cnn -> dtree)")
			} else {
				s.met.brownoutState.SetInt(0)
				s.met.brownoutTransitions.With(`to="normal"`).Inc()
				s.logf("serve: brownout recovered (load fits cnn capacity again)")
			}
		}
		s.met.instrumentAdmission(s.adm)
	}
	if err := s.Reload(); err != nil {
		s.pool.Close()
		return nil, fmt.Errorf("serve: initial model load: %w", err)
	}
	// The decision-tree rung: a trained deploy artifact when configured
	// (a bad one fails the deploy, like a bad model), otherwise the
	// built-in heuristic tree over the model's own format set — the
	// ladder always has a middle rung.
	if cfg.DTreePath != "" {
		dt, err := dtree.LoadFile(cfg.DTreePath)
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("serve: dtree rung load: %w", err)
		}
		s.dtree = dt
	} else {
		s.dtree = dtree.Heuristic(s.model.Load().Cfg.Formats)
	}
	// Feedback capture: the logger registers its feedback_* instruments
	// on the server's own registry so they ride the same /metrics
	// exposition. A feedback setup failure fails the deploy like any
	// other bad configuration.
	if cfg.FeedbackDir != "" {
		fb, err := feedback.NewLogger(feedback.LoggerConfig{
			Dir:             cfg.FeedbackDir,
			MaxSegmentBytes: cfg.FeedbackMaxSegmentBytes,
			MaxSegmentAge:   cfg.FeedbackMaxSegmentAge,
			MaxPatternNNZ:   cfg.FeedbackMaxPatternNNZ,
			EstimateTimings: cfg.FeedbackEstimates,
			Registry:        s.met.reg,
			Log:             cfg.Log,
		})
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("serve: feedback log: %w", err)
		}
		s.fb = fb
	}
	s.dispWG.Add(1)
	go s.dispatch()
	return s, nil
}

// recordFeedback captures one answered prediction into the feedback
// log (no-op when capture is disabled). Never blocks.
func (s *Server) recordFeedback(m *sparse.COO, fp uint64, pred selector.Prediction, rung string, gen uint64, cacheHit bool, clientSec float64) {
	if s.fb == nil {
		return
	}
	s.fb.Record(m, feedback.Entry{
		Fingerprint: fp,
		Format:      pred.Format.String(),
		Rung:        rung,
		FellBack:    pred.FellBack,
		CacheHit:    cacheHit,
		ModelGen:    gen,
		ClientSec:   clientSec,
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// Generation returns the live model generation (1 = initial load).
func (s *Server) Generation() uint64 { return s.gen.Load() }

// Ready reports whether the server can take prediction traffic.
func (s *Server) Ready() bool {
	return s.model.Load() != nil && !s.draining.Load()
}

// SelfURL returns this replica's advertised base URL ("" when unknown).
func (s *Server) SelfURL() string {
	if p := s.selfURL.Load(); p != nil {
		return *p
	}
	return ""
}

// Serve accepts connections on ln until Shutdown. It blocks, returning
// http.ErrServerClosed after a clean shutdown like net/http does. When
// Config.SelfURL was not set, the listener's address becomes the
// replica's advertised identity for peer cache-fill.
func (s *Server) Serve(ln net.Listener) error {
	if s.SelfURL() == "" {
		self := "http://" + ln.Addr().String()
		s.selfURL.Store(&self)
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.httpSrv.Store(hs)
	return hs.Serve(ln)
}

// ListenAndServe binds addr and serves; the bound address (useful with
// ":0") is reported through onListen when non-nil.
func (s *Server) ListenAndServe(addr string, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return s.Serve(ln)
}

// Shutdown drains the server: readiness flips to 503, new predictions
// are refused, in-flight requests run to completion (bounded by ctx),
// the dispatcher and worker pool stop, and a final metrics snapshot is
// flushed to the configured log. It returns ctx.Err() when the drain
// deadline expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutOnce.Do(func() {
		s.draining.Store(true)

		// Stop the HTTP listener (if Serve was used) and wait for
		// handler goroutines; both respect the ctx deadline.
		if hs := s.httpSrv.Load(); hs != nil {
			if e := hs.Shutdown(ctx); e != nil && !errors.Is(e, http.ErrServerClosed) {
				err = e
			}
		}
		done := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(done)
		}()
		drained := false
		select {
		case <-done:
			drained = true
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}

		// No new jobs can be accepted now. On a clean drain, stop the
		// dispatcher and wait for the pool so every queued batch
		// finishes. On a blown deadline a worker may be wedged; waiting
		// on it would turn a bounded shutdown into an unbounded one, so
		// the pool is abandoned (the process is exiting anyway).
		close(s.quit)
		if s.adm != nil {
			s.adm.gate.close()
		}
		if drained {
			s.dispWG.Wait()
			s.pool.Close()
		} else {
			s.logf("serve: drain deadline exceeded; abandoning in-flight work")
		}

		// Seal the feedback log last so every drained answer's entry is
		// rotated into a collector-visible segment.
		if s.fb != nil {
			if e := s.fb.Close(); e != nil {
				s.logf("serve: feedback log close: %v", e)
			}
		}

		if s.cfg.Log != nil {
			s.logf("serve: final metrics")
			s.met.WriteTo(s.cfg.Log)
		}
	})
	return err
}

// predictOne resolves one prediction request end to end: local cache
// lookup, peer cache-fill (when the router's X-Shard-Owner hint names
// another replica), single-flight coalescing, micro-batched inference,
// cache fill. It is the handler-side entry point; ctx aborts the wait
// (client gone / drain deadline) and carries the request trace, which
// gains cache/queue spans here and batch/rung/forward spans on the
// worker side. meta carries the cluster hints in and the cache/peer
// outcomes back out to the handler's response headers.
func (s *Server) predictOne(ctx context.Context, m *sparse.COO, meta *predictMeta) (response, error) {
	tr := obs.TraceFrom(ctx)
	cacheStart := time.Now()
	fp := sparse.Fingerprint(m)
	if pred, gen, ok := s.cache.Get(fp); ok {
		s.met.cacheHits.Inc()
		tr.ObserveSpan("cache", cacheStart)
		meta.cacheStatus = "hit"
		s.recordFeedback(m, fp, pred, rungCNN, gen, true, meta.clientSec)
		// Only CNN-rung answers are ever cached, so a hit reports the
		// cnn rung.
		return makeResponse(pred, gen, true, rungCNN), nil
	}
	s.met.cacheMisses.Inc()
	tr.ObserveSpan("cache", cacheStart)
	meta.cacheStatus = "miss"

	// Peer cache-fill: when another replica owns this fingerprint's
	// shard, ask its cache before paying for a forward pass. Strictly
	// bounded and fail-open — a dead or slow peer can never stall the
	// request (see peer.go).
	if resp, ok := s.peerFill(ctx, fp, meta); ok {
		meta.cacheStatus = "peer"
		return resp, nil
	}

	// Single-flight: if the same fingerprint is already being computed,
	// attach to that computation instead of enqueueing a duplicate.
	// This is what makes POST /v1/predict idempotent-by-fingerprint
	// under router retries and hedges: the repeated request can never
	// double-count a forward pass. The window rides on the cache
	// (CacheSize 0 disables both — drills that must exercise the ladder
	// on every request turn the cache off and get the old behaviour).
	dedup := s.cfg.CacheSize > 0
	c := newCall()
	if dedup {
		s.inflightMu.Lock()
		if existing, ok := s.inflightFP[fp]; ok {
			s.inflightMu.Unlock()
			s.met.dedupHits.Inc()
			meta.coalesced = true
			select {
			case <-existing.done:
				return waitResult(existing)
			case <-ctx.Done():
				return response{}, ctx.Err()
			}
		}
		s.inflightFP[fp] = c
		s.inflightMu.Unlock()
	}

	// The leader's job runs on a context detached from the leader's own
	// request (same deadline, no cancellation): its result is shared
	// with any coalesced duplicates, so one client hanging up must not
	// poison the answer everyone else gets.
	jctx := ctx
	var jcancel context.CancelFunc
	if dedup {
		base := context.WithoutCancel(ctx)
		if dl, ok := ctx.Deadline(); ok {
			jctx, jcancel = context.WithDeadline(base, dl)
		} else {
			jctx = base
		}
	}
	j := &job{ctx: jctx, cancel: jcancel, m: m, fp: fp, tr: tr, enqueued: time.Now(), call: c, clientSec: meta.clientSec}
	// SLO-driven admission (when enabled): the adaptive limiter decides
	// whether this job may enter the system, and a request whose
	// remaining deadline cannot cover the expected queue wait is shed
	// here, while refusal is still cheap. The slot is released in
	// finishJob with the job's observed latency, which is what drives
	// the limit.
	if s.adm != nil {
		if aerr := s.adm.admit(ctx); aerr != nil {
			s.met.queueRejects.Inc()
			s.met.admissionRejects.With(admitReasonLabel(aerr)).Inc()
			s.finishJob(j, jobResult{err: aerr})
			return response{}, aerr
		}
		j.admitted = true
	}
	select {
	case s.jobs <- j:
	default:
		// Admission control: a full queue sheds immediately (the
		// handler answers 429 + Retry-After) instead of letting latency
		// grow without bound under overload. Coalesced waiters shed
		// with their leader. With the adaptive plane on, the limiter
		// (whose ceiling is the queue depth) sheds first, so this path
		// is the legacy fixed-queue behaviour.
		s.met.queueRejects.Inc()
		s.finishJob(j, jobResult{err: errOverloaded})
		return response{}, errOverloaded
	}
	select {
	case <-c.done:
		return waitResult(c)
	case <-ctx.Done():
		return response{}, ctx.Err()
	}
}

// waitResult converts a completed call into the handler-facing answer.
func waitResult(c *call) (response, error) {
	if c.res.err != nil {
		return response{}, c.res.err
	}
	return makeResponse(c.res.pred, c.res.gen, false, c.res.rung), nil
}

var errOverloaded = errors.New("serve: prediction queue full")

// Metrics returns the server's metric registry — the backing store of
// /metrics, shared with the admin listener.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Traces returns the server's ring buffer of recent request traces.
func (s *Server) Traces() *obs.TraceLog { return s.traces }
