package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/represent"
	"repro/internal/selector"
	"repro/internal/sparse"
)

// saveTestModel writes a small (untrained — inference-valid weights are
// all a serving test needs) selector model to path using the atomic
// checksummed envelope writer, with a caller-chosen seed so distinct
// seeds produce distinct model artifacts for reload tests.
func saveTestModel(t testing.TB, path string, seed int64) {
	t.Helper()
	cfg := selector.DefaultConfig(represent.KindHistogram, sparse.CPUFormats())
	cfg.Represent.Size = 16
	cfg.Represent.Bins = 8
	cfg.Seed = seed
	s, err := selector.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

// newTestServer builds a Server around a fresh model file.
func newTestServer(t testing.TB, mutate func(*Config)) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	saveTestModel(t, model, 1)
	cfg := Config{ModelPath: model, BatchWindow: time.Millisecond, CacheSize: 64}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, model
}

// matrixJSON renders an n×n banded matrix as a predict request body.
func matrixJSON(n, band int) []byte {
	var req predictRequest
	req.Rows, req.Cols = n, n
	for i := 0; i < n; i++ {
		for d := -band; d <= band; d++ {
			if j := i + d; j >= 0 && j < n {
				req.Entries = append(req.Entries, [3]float64{float64(i), float64(j), 1})
			}
		}
	}
	b, _ := json.Marshal(req)
	return b
}

func postPredict(t testing.TB, ts *httptest.Server, body []byte, contentType string) (int, response, errorResponse) {
	t.Helper()
	code, ok, bad, err := postPredictErr(ts, body, contentType)
	if err != nil {
		t.Fatal(err)
	}
	return code, ok, bad
}

// postPredictErr is the goroutine-safe variant of postPredict: it
// reports transport and decode failures as an error instead of failing
// the test, so it may be called off the test goroutine.
func postPredictErr(ts *httptest.Server, body []byte, contentType string) (int, response, errorResponse, error) {
	resp, err := ts.Client().Post(ts.URL+"/v1/predict", contentType, bytes.NewReader(body))
	if err != nil {
		return 0, response{}, errorResponse{}, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var ok response
	var bad errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &ok); err != nil {
			return resp.StatusCode, ok, bad, fmt.Errorf("bad 200 body %q: %v", data, err)
		}
	} else {
		json.Unmarshal(data, &bad)
	}
	return resp.StatusCode, ok, bad, nil
}

func validFormat(t testing.TB, name string) sparse.Format {
	t.Helper()
	f, err := sparse.ParseFormat(name)
	if err != nil {
		t.Fatalf("server returned unknown format %q", name)
	}
	return f
}

func TestPredictJSON(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp, _ := postPredict(t, ts, matrixJSON(24, 2), "application/json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.FellBack {
		t.Fatalf("unexpected fallback: %s", resp.Reason)
	}
	validFormat(t, resp.Format)
	if len(resp.Probs) != len(sparse.CPUFormats()) {
		t.Fatalf("got %d probs, want %d", len(resp.Probs), len(sparse.CPUFormats()))
	}
	sum := 0.0
	for _, p := range resp.Probs {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	if resp.ModelGeneration != 1 {
		t.Fatalf("generation %d, want 1", resp.ModelGeneration)
	}
}

func TestPredictMatrixMarket(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	m := sparse.MustCOO(10, 10, []sparse.Entry{
		{Row: 0, Col: 0, Val: 2}, {Row: 4, Col: 5, Val: -1}, {Row: 9, Col: 9, Val: 3},
	})
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	// Once with the dedicated content type, once relying on banner
	// sniffing.
	for _, ct := range []string{"text/matrix-market", "text/plain"} {
		code, resp, _ := postPredict(t, ts, buf.Bytes(), ct)
		if code != http.StatusOK || resp.FellBack {
			t.Fatalf("ct=%s: status %d fellback=%v (%s)", ct, code, resp.FellBack, resp.Reason)
		}
		validFormat(t, resp.Format)
	}
}

func TestPredictRejectsBadBodies(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 2048 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := map[string]struct {
		body []byte
		want int
	}{
		"malformed json":    {[]byte(`{"rows": 3`), http.StatusBadRequest},
		"unknown fields":    {[]byte(`{"rows":3,"cols":3,"entries":[],"shape":"x"}`), http.StatusBadRequest},
		"bad dims":          {[]byte(`{"rows":0,"cols":3,"entries":[[0,0,1]]}`), http.StatusBadRequest},
		"out of range":      {[]byte(`{"rows":2,"cols":2,"entries":[[5,0,1]]}`), http.StatusBadRequest},
		"fractional coords": {[]byte(`{"rows":4,"cols":4,"entries":[[0.5,1,1]]}`), http.StatusBadRequest},
		// Resource-cap violations are 413, distinguishable from malformed
		// bodies so clients know whether to fix or shrink the request.
		"oversized body":  {matrixJSON(64, 8), http.StatusRequestEntityTooLarge},
		"too many rows":   {[]byte(`{"rows":2000000000,"cols":3,"entries":[[0,0,1]]}`), http.StatusRequestEntityTooLarge},
		"unsupported mm":  {[]byte("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"), http.StatusUnprocessableEntity},
		"oversized mm":    {[]byte("%%MatrixMarket matrix coordinate real general\n2000000000 2 1\n1 1 1\n"), http.StatusRequestEntityTooLarge},
		"mm wrong count":  {[]byte("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1\n"), http.StatusBadRequest},
		"mm out of range": {[]byte("%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 1\n"), http.StatusBadRequest},
	}
	for name, tc := range cases {
		code, _, e := postPredict(t, ts, tc.body, "application/json")
		if code != tc.want {
			t.Errorf("%s: status %d, want %d", name, code, tc.want)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error body", name)
		}
	}
	if code, _, _ := postPredict(t, ts, []byte("%%MatrixMarket matrix coordinate real general\nnot numbers"), "text/plain"); code != http.StatusBadRequest {
		t.Errorf("bad matrix market: status %d, want 400", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d, want 405", resp.StatusCode)
	}
}

// TestPredictEmptyMatrixFallsBack: a structurally valid but empty
// matrix cannot be normalised; the service answers with the CSR
// baseline and says why rather than erroring.
func TestPredictEmptyMatrixFallsBack(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp, _ := postPredict(t, ts, []byte(`{"rows":5,"cols":5,"entries":[]}`), "application/json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.FellBack || resp.Format != selector.FallbackFormat.String() {
		t.Fatalf("want CSR fallback, got %+v", resp)
	}
	if !strings.Contains(resp.Reason, "no nonzeros") {
		t.Fatalf("reason %q", resp.Reason)
	}
}

func TestHealthReadyMetricsEndpoints(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200, "/metrics": 200} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "serve_model_generation 1") {
			t.Errorf("metrics missing generation gauge:\n%s", body)
		}
	}
}

func scrapeMetrics(t testing.TB, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// metricValue extracts a single un-labeled sample value.
func metricValue(t testing.TB, page, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		var v float64
		if n, _ := fmt.Sscanf(line, name+" %g", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, page)
	return 0
}

// TestCacheHitSkipsForwardPass is acceptance-critical: the second
// request for the same sparsity pattern must be answered from the LRU
// cache (visible in /metrics) without another NN forward pass (visible
// as an unchanged batch-job count).
func TestCacheHitSkipsForwardPass(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := matrixJSON(20, 1)
	code, first, _ := postPredict(t, ts, body, "application/json")
	if code != 200 || first.Cached {
		t.Fatalf("first: code %d cached=%v", code, first.Cached)
	}
	jobsAfterMiss := metricValue(t, scrapeMetrics(t, ts), "serve_batch_jobs_total")

	// Same pattern, different values, different entry order: still a hit.
	alt := matrixJSON(20, 1)
	var req predictRequest
	json.Unmarshal(alt, &req)
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(req.Entries), func(i, j int) { req.Entries[i], req.Entries[j] = req.Entries[j], req.Entries[i] })
	for i := range req.Entries {
		req.Entries[i][2] = rng.NormFloat64() + 5
	}
	alt, _ = json.Marshal(req)

	code, second, _ := postPredict(t, ts, alt, "application/json")
	if code != 200 {
		t.Fatalf("second: code %d", code)
	}
	if !second.Cached {
		t.Fatal("second request with identical pattern was not served from cache")
	}
	if second.Format != first.Format {
		t.Fatalf("cache changed the answer: %s vs %s", second.Format, first.Format)
	}

	page := scrapeMetrics(t, ts)
	if hits := metricValue(t, page, "serve_cache_hits_total"); hits < 1 {
		t.Fatalf("cache hits %g, want >= 1", hits)
	}
	if jobs := metricValue(t, page, "serve_batch_jobs_total"); jobs != jobsAfterMiss {
		t.Fatalf("batch jobs moved %g -> %g: cache hit did not skip the forward pass", jobsAfterMiss, jobs)
	}
}

// TestConcurrentClients covers the acceptance load shape: 100
// concurrent clients, each issuing several predictions over a mix of
// patterns, everything answered 200 with a valid format. Run under
// -race (scripts/check.sh) this also proves the batching path clean.
func TestConcurrentClients(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.CacheSize = 32 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ts.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = 100

	bodies := make([][]byte, 7)
	for i := range bodies {
		bodies[i] = matrixJSON(12+3*i, 1+i%3)
	}

	const clients, perClient = 100, 5
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				code, resp, bad := postPredict(t, ts, bodies[(c+i)%len(bodies)], "application/json")
				if code != http.StatusOK || resp.FellBack {
					t.Errorf("client %d req %d: code %d fellback=%v err=%s reason=%s",
						c, i, code, resp.FellBack, bad.Error, resp.Reason)
					failures.Add(1)
					return
				}
				if _, err := sparse.ParseFormat(resp.Format); err != nil {
					t.Errorf("client %d req %d: bad format %q", c, i, resp.Format)
					failures.Add(1)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failed requests", failures.Load())
	}
	page := scrapeMetrics(t, ts)
	// Every request is either a batch job, a cache hit, or coalesced onto
	// an in-flight job for the same fingerprint (single-flight dedup).
	jobs := metricValue(t, page, "serve_batch_jobs_total")
	hits := metricValue(t, page, "serve_cache_hits_total")
	dedup := metricValue(t, page, "serve_dedup_hits_total")
	if jobs+hits+dedup < clients*perClient {
		t.Fatalf("accounting: %g jobs + %g hits + %g coalesced for %d requests", jobs, hits, dedup, clients*perClient)
	}
}
