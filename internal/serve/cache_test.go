package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/selector"
	"repro/internal/sparse"
)

func pred(f sparse.Format) selector.Prediction {
	return selector.Prediction{Format: f, Probs: map[sparse.Format]float64{f: 1}}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newPredictionCache(2)
	c.Add(1, pred(sparse.FormatCSR), 1)
	c.Add(2, pred(sparse.FormatELL), 1)
	if _, _, ok := c.Get(1); !ok { // touch 1: now 2 is LRU
		t.Fatal("missing entry 1")
	}
	c.Add(3, pred(sparse.FormatDIA), 1) // evicts 2
	if _, _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, _, ok := c.Get(1); !ok {
		t.Fatal("recently used entry 1 was evicted")
	}
	if _, _, ok := c.Get(3); !ok {
		t.Fatal("fresh entry 3 missing")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions %d, want 1", ev)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newPredictionCache(4)
	c.Add(7, pred(sparse.FormatCSR), 1)
	c.Add(7, pred(sparse.FormatDIA), 2)
	p, gen, ok := c.Get(7)
	if !ok || p.Format != sparse.FormatDIA || gen != 2 {
		t.Fatalf("got %v gen %d ok %v", p.Format, gen, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newPredictionCache(0)
	c.Add(1, pred(sparse.FormatCSR), 1)
	if _, _, ok := c.Get(1); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestCacheReset(t *testing.T) {
	c := newPredictionCache(8)
	for k := uint64(0); k < 5; k++ {
		c.Add(k, pred(sparse.FormatCSR), 1)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len %d after reset", c.Len())
	}
	for k := uint64(0); k < 5; k++ {
		if _, _, ok := c.Get(k); ok {
			t.Fatalf("entry %d survived reset", k)
		}
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newPredictionCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := uint64((g*31 + i) % 64)
				if i%3 == 0 {
					c.Add(k, pred(sparse.FormatCSR), uint64(g))
				} else {
					c.Get(k)
				}
				if i%100 == 0 && g == 0 {
					c.Reset()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
}

func TestMetricsRender(t *testing.T) {
	m := newMetrics()
	m.request("predict", 200, time.Now().Add(-2*time.Millisecond))
	m.request("predict", 400, time.Now())
	m.predictions.With(`format="CSR"`).Inc()
	m.cacheHits.Add(3)
	m.batchSize.Observe(4)

	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`serve_requests_total{code="200",endpoint="predict"} 1`,
		`serve_requests_total{code="400",endpoint="predict"} 1`,
		`serve_predictions_total{format="CSR"} 1`,
		"serve_cache_hits_total 3",
		`serve_request_seconds_count{endpoint="predict"} 2`,
		`serve_batch_size_bucket{le="4"} 1`,
		`serve_batch_size_bucket{le="2"} 0`,
		`serve_batch_size_bucket{le="+Inf"} 1`,
		"# TYPE serve_requests_total counter",
		"# TYPE serve_cache_entries gauge",
		"# TYPE serve_request_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The 2ms observation must land in every bucket with bound >= 2.5ms
	// but not the 1ms one.
	if !strings.Contains(out, `serve_request_seconds_bucket{endpoint="predict",le="0.0025"}`) {
		t.Error("expected 2.5ms bucket line")
	}
}

// The histogram primitive's own unit tests (cumulative buckets, atomic
// concurrent sums) moved to internal/obs with the instrument layer; see
// obs.TestHistogramCumulative and the registry race hammer.
