package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/machine"
)

func TestSplitShards(t *testing.T) {
	train, test := SplitShards(10, 0.2, 1)
	if len(train) != 8 || len(test) != 2 {
		t.Fatalf("split 10 at 0.2 → %d/%d, want 8/2", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int(nil), train...), test...) {
		if seen[i] || i < 0 || i >= 10 {
			t.Fatalf("shard %d duplicated or out of range", i)
		}
		seen[i] = true
	}
	// Deterministic under the same seed, different under another.
	train2, _ := SplitShards(10, 0.2, 1)
	for i := range train {
		if train[i] != train2[i] {
			t.Fatal("split not deterministic")
		}
	}
	// Never hold out everything; never hold out nothing (when n > 1).
	tr, te := SplitShards(2, 0.9, 3)
	if len(tr) == 0 || len(te) == 0 {
		t.Fatalf("degenerate split %d/%d", len(tr), len(te))
	}
	tr, te = SplitShards(1, 0.5, 3)
	if len(tr) != 1 || len(te) != 0 {
		t.Fatalf("single shard must stay in training: %d/%d", len(tr), len(te))
	}
}

// The full pipeline over a store directory: shard-streamed training
// with shard-level held-out evaluation, never materialising the corpus.
func TestTrainFromStoreDir(t *testing.T) {
	lab := machine.NewLabeler(machine.XeonLike(), 2)
	d := dataset.Generate(dataset.Config{Count: 60, Seed: 7, MaxN: 256}, lab)
	dir := t.TempDir()
	if _, err := dataset.WriteStore(dir, d, 8); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	o := tinyOptions()
	o.Epochs = 4
	o.DatasetPath = dir
	o.Log = &log
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selector == nil {
		t.Fatal("no selector")
	}
	if res.Dataset != nil {
		t.Fatal("store path materialised the whole corpus into the result")
	}
	if res.Metrics == nil || res.Metrics.Total() == 0 {
		t.Fatalf("no held-out metrics: %+v", res.Metrics)
	}
	// 60 records at shard size 8 → 8 shards, 0.2 holds out 2 (16 or
	// fewer records, the last shard is short).
	if res.Metrics.Total() > 16 {
		t.Fatalf("held-out evaluation saw %d records, more than two shards", res.Metrics.Total())
	}
	if !strings.Contains(log.String(), "sharded corpus store") {
		t.Fatalf("store path not taken:\n%s", log.String())
	}
}

// A wrong-platform store must be refused with the typed mismatch error,
// exactly like the monolithic artifact path.
func TestTrainFromStoreDirMismatch(t *testing.T) {
	lab := machine.NewLabeler(machine.XeonLike(), 2)
	d := dataset.Generate(dataset.Config{Count: 20, Seed: 7, MaxN: 128}, lab)
	dir := t.TempDir()
	if _, err := dataset.WriteStore(dir, d, 8); err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Platform = "titanlike"
	o.DatasetPath = dir
	_, err := Train(o)
	if err == nil {
		t.Fatal("GPU pipeline accepted a CPU-labeled store")
	}
	if !errors.Is(err, dataset.ErrMismatch) {
		t.Fatalf("untyped mismatch error: %v", err)
	}
}
