package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/obs"
)

// TestTrainingTelemetryLiveScrape drives the full telemetry chain the
// way cmd/train wires it: core.TrainCtx → selector → nn.Run PostEpoch →
// obs.TrainingTelemetry → a live /metrics endpoint — and scrapes that
// endpoint from inside the epoch hook, i.e. strictly mid-training,
// which is the `train -metrics-addr` contract.
func TestTrainingTelemetryLiveScrape(t *testing.T) {
	reg := obs.NewRegistry()
	var jsonl bytes.Buffer
	tel := obs.NewTrainingTelemetry(reg, &jsonl)

	ts := httptest.NewServer(obs.AdminHandler(obs.AdminConfig{Registry: reg}))
	defer ts.Close()

	const epochs = 3
	var midScrape string
	hook := func(st nn.EpochStats) {
		tel.OnEpoch(obs.EpochEvent{
			Epoch: st.Epoch, Loss: st.Loss, Accuracy: st.Accuracy,
			GradNorm: st.GradNorm, LR: st.LR, Retries: st.Retries,
			EpochSeconds: st.Duration.Seconds(),
			Checkpointed: st.Checkpointed, CheckpointSeconds: st.CheckpointDuration.Seconds(),
		})
		if st.Epoch == 2 {
			// Mid-training by construction: epoch 2 of 3 has completed,
			// the run is still going.
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Errorf("mid-training scrape: %v", err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			midScrape = string(body)
		}
	}

	res, err := TrainCtx(context.Background(), Options{
		Count: 40, MaxN: 64, Epochs: epochs, Seed: 3,
		RepSize: 8, RepBins: 4, Workers: 2,
		EpochHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("training did not complete")
	}

	if midScrape == "" {
		t.Fatal("epoch hook never scraped mid-training")
	}
	for _, want := range []string{"train_epoch 2", "train_epochs_total 2", "train_loss"} {
		if !strings.Contains(midScrape, want) {
			t.Errorf("mid-training scrape missing %q in:\n%s", want, midScrape)
		}
	}

	// The JSONL stream holds one well-formed event per completed epoch,
	// with the trainer's real statistics filled in.
	var events []obs.EpochEvent
	sc := bufio.NewScanner(&jsonl)
	for sc.Scan() {
		var ev obs.EpochEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != epochs {
		t.Fatalf("got %d telemetry events, want %d", len(events), epochs)
	}
	for i, ev := range events {
		if ev.Epoch != i+1 {
			t.Errorf("event %d has epoch %d", i, ev.Epoch)
		}
		if ev.GradNorm <= 0 {
			t.Errorf("epoch %d missing grad norm", ev.Epoch)
		}
		if ev.EpochSeconds <= 0 {
			t.Errorf("epoch %d missing wall-clock", ev.Epoch)
		}
		if ev.Accuracy < 0 || ev.Accuracy > 1 {
			t.Errorf("epoch %d accuracy %g out of range", ev.Epoch, ev.Accuracy)
		}
	}
}
