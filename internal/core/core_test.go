package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/represent"
	"repro/internal/sparse"
	"repro/internal/synthgen"
)

func tinyOptions() Options {
	return Options{
		Platform: "xeonlike", Count: 120, MaxN: 512,
		Representation: represent.KindHistogram,
		RepSize:        16, RepBins: 8,
		Epochs: 8, Seed: 2,
	}
}

func TestTrainEndToEnd(t *testing.T) {
	var log bytes.Buffer
	o := tinyOptions()
	o.Log = &log
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Total() == 0 || res.Selector == nil || len(res.Train) == 0 {
		t.Fatal("incomplete result")
	}
	if !strings.Contains(log.String(), "step 4") {
		t.Fatal("missing progress log")
	}
	// Prediction path.
	m := synthgen.Banded(512, 1, 1.0, 5)
	f, probs, err := res.Selector.Predict(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := probs[f]; !ok {
		t.Fatal("prediction not in probability map")
	}
	// BestFormat converts to the prediction.
	conv, cf, err := BestFormat(res.Selector, m)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Format() != cf {
		t.Fatal("BestFormat format mismatch")
	}
	if !conv.ToCOO().Equal(m) {
		t.Fatal("BestFormat changed the matrix")
	}
}

func TestTrainUnknownPlatform(t *testing.T) {
	o := tinyOptions()
	o.Platform = "nope"
	if _, err := Train(o); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestTrainWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock labelling is slow")
	}
	o := tinyOptions()
	o.Count = 40
	o.MaxN = 256
	o.Epochs = 3
	o.WallClock = true
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock labels must be real times.
	for _, r := range res.Dataset.Records[:5] {
		if r.Times[r.Label] <= 0 {
			t.Fatal("non-positive measured time")
		}
	}
}

func TestPredictFromFile(t *testing.T) {
	o := tinyOptions()
	o.Count = 60
	o.Epochs = 3
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := sparse.WriteMatrixMarketFile(path, synthgen.Uniform(300, 6, 0, 9)); err != nil {
		t.Fatal(err)
	}
	f, _, err := Predict(res.Selector, path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range sparse.CPUFormats() {
		if g == f {
			found = true
		}
	}
	if !found {
		t.Fatalf("prediction %v outside CPU set", f)
	}
	if _, _, err := Predict(res.Selector, "/nonexistent.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// An interrupted run continued with Resume trains to the full target
// and still evaluates; the checkpoint directory drives the handoff.
func TestTrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	o := tinyOptions()
	o.Count = 60
	o.Epochs = 2
	o.CheckpointDir = dir
	o.CheckpointEvery = 1
	if _, err := Train(o); err != nil {
		t.Fatal(err)
	}
	ck, err := nn.LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 2 {
		t.Fatalf("checkpoint epoch %d, want 2", ck.Epoch)
	}

	o.Epochs = 4
	o.Resume = true
	var log bytes.Buffer
	o.Log = &log
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "resuming from") {
		t.Fatalf("resume not logged:\n%s", log.String())
	}
	if res.Metrics == nil || res.Metrics.Total() == 0 {
		t.Fatal("resumed run did not evaluate")
	}
	ck, err = nn.LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 4 {
		t.Fatalf("final checkpoint epoch %d, want 4", ck.Epoch)
	}

	// Resume against a directory no run has written yet (not even
	// created) just starts fresh.
	o.CheckpointDir = filepath.Join(t.TempDir(), "not-yet-created")
	if _, err := Train(o); err != nil {
		t.Fatal(err)
	}
}

// Cancellation mid-training returns the partial result (selector,
// corpus, split) alongside the context error instead of dropping
// everything.
func TestTrainCtxCancelledReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := tinyOptions()
	o.Count = 60
	o.Epochs = 6
	o.EpochHook = func(st nn.EpochStats) {
		if st.Epoch >= 1 {
			cancel()
		}
	}
	res, err := TrainCtx(ctx, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Selector == nil || res.Dataset == nil || len(res.Train) == 0 {
		t.Fatalf("partial result incomplete: %+v", res)
	}
	if res.Metrics != nil {
		t.Fatal("cancelled run reported held-out metrics")
	}
}

// Cancellation during corpus generation (now context-aware) aborts the
// run with the context error before a selector ever exists.
func TestTrainCtxCancelledDuringGeneration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := tinyOptions()
	o.Count = 60
	o.Epochs = 3
	res, err := TrainCtx(ctx, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("expected no result when generation was cancelled, got %+v", res)
	}
}

func TestGPUPlatformTrains(t *testing.T) {
	o := tinyOptions()
	o.Platform = "titanlike"
	o.Count = 80
	o.Epochs = 3
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset.Formats) != 6 {
		t.Fatalf("GPU formats: %v", res.Dataset.Formats)
	}
}
