package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/represent"
	"repro/internal/sparse"
	"repro/internal/synthgen"
)

func tinyOptions() Options {
	return Options{
		Platform: "xeonlike", Count: 120, MaxN: 512,
		Representation: represent.KindHistogram,
		RepSize:        16, RepBins: 8,
		Epochs: 8, Seed: 2,
	}
}

func TestTrainEndToEnd(t *testing.T) {
	var log bytes.Buffer
	o := tinyOptions()
	o.Log = &log
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Total() == 0 || res.Selector == nil || len(res.Train) == 0 {
		t.Fatal("incomplete result")
	}
	if !strings.Contains(log.String(), "step 4") {
		t.Fatal("missing progress log")
	}
	// Prediction path.
	m := synthgen.Banded(512, 1, 1.0, 5)
	f, probs, err := res.Selector.Predict(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := probs[f]; !ok {
		t.Fatal("prediction not in probability map")
	}
	// BestFormat converts to the prediction.
	conv, cf, err := BestFormat(res.Selector, m)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Format() != cf {
		t.Fatal("BestFormat format mismatch")
	}
	if !conv.ToCOO().Equal(m) {
		t.Fatal("BestFormat changed the matrix")
	}
}

func TestTrainUnknownPlatform(t *testing.T) {
	o := tinyOptions()
	o.Platform = "nope"
	if _, err := Train(o); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestTrainWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock labelling is slow")
	}
	o := tinyOptions()
	o.Count = 40
	o.MaxN = 256
	o.Epochs = 3
	o.WallClock = true
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock labels must be real times.
	for _, r := range res.Dataset.Records[:5] {
		if r.Times[r.Label] <= 0 {
			t.Fatal("non-positive measured time")
		}
	}
}

func TestPredictFromFile(t *testing.T) {
	o := tinyOptions()
	o.Count = 60
	o.Epochs = 3
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := sparse.WriteMatrixMarketFile(path, synthgen.Uniform(300, 6, 0, 9)); err != nil {
		t.Fatal(err)
	}
	f, _, err := Predict(res.Selector, path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range sparse.CPUFormats() {
		if g == f {
			found = true
		}
	}
	if !found {
		t.Fatalf("prediction %v outside CPU set", f)
	}
	if _, _, err := Predict(res.Selector, "/nonexistent.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestGPUPlatformTrains(t *testing.T) {
	o := tinyOptions()
	o.Platform = "titanlike"
	o.Count = 80
	o.Epochs = 3
	res, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset.Formats) != 6 {
		t.Fatalf("GPU formats: %v", res.Dataset.Formats)
	}
}
