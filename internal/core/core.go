// Package core is the end-to-end facade of the CNN-based sparse-matrix
// format selector — the library equivalent of the paper artifact's
// spmv_model.py train / test / predict modes. It wires the Figure 3
// pipeline together: label collection on a (simulated or wall-clock)
// platform, matrix normalisation, CNN construction and training, and
// best-format prediction for new matrices.
package core

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/represent"
	"repro/internal/selector"
	"repro/internal/sparse"
)

// Options configures an end-to-end training run.
type Options struct {
	// Platform names the target machine: "xeonlike", "a8like" or
	// "titanlike" (Table 1). The format selection set follows the
	// platform kind (Table 2 vs Table 3).
	Platform string
	// Count is the number of training matrices to generate and label.
	Count int
	// MaxN bounds the generated matrix dimension.
	MaxN int
	// Representation selects the input normalisation (default:
	// histogram, the paper's best).
	Representation represent.Kind
	// RepSize / RepBins fix the representation geometry (defaults
	// 32×16; the paper uses 128×50).
	RepSize, RepBins int
	// Epochs / Workers / Seed control training.
	Epochs  int
	Workers int
	Seed    int64
	// TestFraction is held out for evaluation (default 0.2).
	TestFraction float64
	// WallClock labels matrices by timing the real Go SpMV kernels on
	// the host instead of the platform cost model. Slower but
	// measurement-grounded.
	WallClock bool
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (o *Options) defaults() {
	if o.Platform == "" {
		o.Platform = "xeonlike"
	}
	if o.Count <= 0 {
		o.Count = 600
	}
	if o.MaxN <= 0 {
		o.MaxN = 2048
	}
	if o.RepSize <= 0 {
		o.RepSize = 32
	}
	if o.RepBins <= 0 {
		o.RepBins = 16
	}
	if o.Epochs <= 0 {
		o.Epochs = 40
	}
	if o.TestFraction <= 0 || o.TestFraction >= 1 {
		o.TestFraction = 0.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Result is a trained selector with its corpus and held-out evaluation.
type Result struct {
	Selector *selector.Selector
	Dataset  *dataset.Dataset
	Train    []int
	Test     []int
	Metrics  *selector.Metrics
}

// Train runs the full Figure 3 construction pipeline: generate and
// label a corpus for the platform, train the CNN selector, and evaluate
// it on a held-out split.
func Train(o Options) (*Result, error) {
	o.defaults()
	p, err := machine.PlatformByName(o.Platform)
	if err != nil {
		return nil, err
	}
	lab := machine.NewLabeler(p, o.Seed)
	o.logf("step 1: generating and labelling %d matrices on %s", o.Count, p)
	d := dataset.Generate(dataset.Config{Count: o.Count, Seed: o.Seed, MaxN: o.MaxN, Workers: o.Workers}, lab)
	if o.WallClock {
		o.logf("        relabelling with wall-clock kernel timings")
		if err := relabelWallClock(d, o.Workers); err != nil {
			return nil, err
		}
	}
	counts := d.ClassCounts()
	for i, f := range d.Formats {
		o.logf("        %-5s %d", f, counts[i])
	}

	cfg := selector.DefaultConfig(o.Representation, d.Formats)
	cfg.Represent.Size = o.RepSize
	cfg.Represent.Bins = o.RepBins
	cfg.Epochs = o.Epochs
	cfg.Workers = o.Workers
	cfg.Seed = o.Seed
	o.logf("step 2+3: %s representation (%dx%d), late-merging CNN", cfg.Represent.Kind, o.RepSize, o.RepBins)
	s, err := selector.New(cfg)
	if err != nil {
		return nil, err
	}
	trainIdx, testIdx := d.Split(o.TestFraction, o.Seed+7)
	o.logf("step 4: training on %d matrices (%d epochs)", len(trainIdx), o.Epochs)
	losses, err := s.Train(d, trainIdx)
	if err != nil {
		return nil, err
	}
	o.logf("        loss %.3f -> %.3f", losses[0], losses[len(losses)-1])
	m, err := s.Evaluate(d, testIdx)
	if err != nil {
		return nil, err
	}
	o.logf("held-out accuracy: %.1f%%", m.Accuracy()*100)
	return &Result{Selector: s, Dataset: d, Train: trainIdx, Test: testIdx, Metrics: m}, nil
}

// relabelWallClock replaces each record's label and times with wall-
// clock measurements of the Go kernels.
func relabelWallClock(d *dataset.Dataset, workers int) error {
	for i := range d.Records {
		r := &d.Records[i]
		label, times, err := machine.MeasureLabel(r.Matrix(), d.Formats, workers, 3)
		if err != nil {
			return err
		}
		r.Label = label
		r.Times = times
	}
	return nil
}

// Predict loads a MatrixMarket file and returns the model's chosen
// format with per-format probabilities.
func Predict(s *selector.Selector, mtxPath string) (sparse.Format, map[sparse.Format]float64, error) {
	m, err := sparse.ReadMatrixMarketFile(mtxPath)
	if err != nil {
		return 0, nil, err
	}
	return s.Predict(m)
}

// BestFormat converts m to the selector's predicted best format, ready
// for repeated SpMV use.
func BestFormat(s *selector.Selector, m *sparse.COO) (sparse.Matrix, sparse.Format, error) {
	f, _, err := s.Predict(m)
	if err != nil {
		return nil, 0, err
	}
	out, err := sparse.Convert(m, f)
	if err != nil {
		return nil, 0, err
	}
	return out, f, nil
}
