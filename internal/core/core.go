// Package core is the end-to-end facade of the CNN-based sparse-matrix
// format selector — the library equivalent of the paper artifact's
// spmv_model.py train / test / predict modes. It wires the Figure 3
// pipeline together: label collection on a (simulated or wall-clock)
// platform, matrix normalisation, CNN construction and training, and
// best-format prediction for new matrices.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/represent"
	"repro/internal/selector"
	"repro/internal/sparse"
)

// Options configures an end-to-end training run.
type Options struct {
	// Platform names the target machine: "xeonlike", "a8like" or
	// "titanlike" (Table 1). The format selection set follows the
	// platform kind (Table 2 vs Table 3).
	Platform string
	// Count is the number of training matrices to generate and label.
	Count int
	// MaxN bounds the generated matrix dimension.
	MaxN int
	// Representation selects the input normalisation (default:
	// histogram, the paper's best).
	Representation represent.Kind
	// RepSize / RepBins fix the representation geometry (defaults
	// 32×16; the paper uses 128×50).
	RepSize, RepBins int
	// Epochs / Workers / Seed control training.
	Epochs  int
	Workers int
	Seed    int64
	// TestFraction is held out for evaluation (default 0.2).
	TestFraction float64
	// WallClock labels matrices by timing the real Go SpMV kernels on
	// the host instead of the platform cost model. Slower but
	// measurement-grounded.
	WallClock bool
	// DatasetPath, when non-empty, loads a pre-built corpus (a gendata
	// artifact) instead of generating one. The corpus must be labeled
	// for Platform with its format set — dataset.ErrMismatch otherwise:
	// labels are architecture-dependent, so a GPU corpus silently
	// training a CPU selector is a correctness bug, not a convenience.
	// Count, MaxN and WallClock are ignored on this path.
	DatasetPath string
	// CheckpointDir, when non-empty, makes training write periodic
	// checkpoints there (and a best-by-loss copy) so an interrupted run
	// can be continued with Resume.
	CheckpointDir string
	// CheckpointEvery is the checkpoint period in epochs (default 5).
	CheckpointEvery int
	// Resume continues training from the newest checkpoint in
	// CheckpointDir instead of starting fresh. The corpus is regenerated
	// deterministically, so Platform, Count, MaxN and Seed must match
	// the interrupted run. When the directory holds no checkpoint yet,
	// the run starts from scratch.
	Resume bool
	// EpochHook, when set, observes every successfully completed
	// training epoch with its statistics — the attachment point for
	// training telemetry (cmd/train wires it to the obs layer). It runs
	// on the training goroutine.
	EpochHook func(nn.EpochStats)
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (o *Options) defaults() {
	if o.Platform == "" {
		o.Platform = "xeonlike"
	}
	if o.Count <= 0 {
		o.Count = 600
	}
	if o.MaxN <= 0 {
		o.MaxN = 2048
	}
	if o.RepSize <= 0 {
		o.RepSize = 32
	}
	if o.RepBins <= 0 {
		o.RepBins = 16
	}
	if o.Epochs <= 0 {
		o.Epochs = 40
	}
	if o.TestFraction <= 0 || o.TestFraction >= 1 {
		o.TestFraction = 0.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 5
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Result is a trained selector with its corpus and held-out evaluation.
type Result struct {
	Selector *selector.Selector
	Dataset  *dataset.Dataset
	Train    []int
	Test     []int
	Metrics  *selector.Metrics
}

// Train runs the full Figure 3 construction pipeline: generate and
// label a corpus for the platform, train the CNN selector, and evaluate
// it on a held-out split.
func Train(o Options) (*Result, error) {
	return TrainCtx(context.Background(), o)
}

// TrainCtx is Train with cancellation and fault tolerance: the run
// checkpoints to o.CheckpointDir (if set), resumes an interrupted run
// when o.Resume is set, and on ctx cancellation flushes a final
// checkpoint and returns the partial Result (selector, corpus and
// split, no held-out metrics) alongside the context error.
func TrainCtx(ctx context.Context, o Options) (*Result, error) {
	o.defaults()
	p, err := machine.PlatformByName(o.Platform)
	if err != nil {
		return nil, err
	}
	lab := machine.NewLabeler(p, o.Seed)
	if o.DatasetPath != "" && dataset.IsStoreDir(o.DatasetPath) {
		return trainStoreCtx(ctx, o, lab)
	}
	var d *dataset.Dataset
	if o.DatasetPath != "" {
		o.logf("step 1: loading pre-labeled corpus from %s", o.DatasetPath)
		d, err = dataset.LoadValidated(o.DatasetPath, lab)
		if err != nil {
			return nil, err
		}
	} else {
		o.logf("step 1: generating and labelling %d matrices on %s", o.Count, p)
		d, _, err = dataset.GenerateCtx(ctx, dataset.Config{Count: o.Count, Seed: o.Seed, MaxN: o.MaxN, Workers: o.Workers}, lab)
		if err != nil {
			return nil, err
		}
		if o.WallClock {
			o.logf("        relabelling with wall-clock kernel timings")
			if err := relabelWallClock(ctx, d, o.Workers); err != nil {
				return nil, err
			}
		}
	}
	counts := d.ClassCounts()
	for i, f := range d.Formats {
		o.logf("        %-5s %d", f, counts[i])
	}

	var (
		s      *selector.Selector
		resume *nn.Checkpoint
	)
	if o.Resume && o.CheckpointDir != "" {
		s, resume, err = selector.LoadCheckpoint(o.CheckpointDir)
		switch {
		case err == nil:
			o.logf("resuming from %s at epoch %d (loss %.3f)", o.CheckpointDir, resume.Epoch, resume.Loss)
			// The target epoch count and parallelism come from this
			// invocation; everything else (architecture, representation,
			// hyperparameters) is restored from the checkpoint.
			s.Cfg.Epochs = o.Epochs
			s.Cfg.Workers = o.Workers
		case errors.Is(err, nn.ErrNoCheckpoint):
			o.logf("no checkpoint in %s; starting fresh", o.CheckpointDir)
		default:
			return nil, fmt.Errorf("core: resuming from %s: %w", o.CheckpointDir, err)
		}
	}
	if s == nil {
		cfg := selector.DefaultConfig(o.Representation, d.Formats)
		cfg.Represent.Size = o.RepSize
		cfg.Represent.Bins = o.RepBins
		cfg.Epochs = o.Epochs
		cfg.Workers = o.Workers
		cfg.Seed = o.Seed
		o.logf("step 2+3: %s representation (%dx%d), late-merging CNN", cfg.Represent.Kind, o.RepSize, o.RepBins)
		s, err = selector.New(cfg)
		if err != nil {
			return nil, err
		}
	}

	var cp *nn.Checkpointer
	if o.CheckpointDir != "" {
		cp, err = nn.NewCheckpointer(o.CheckpointDir, o.CheckpointEvery, 3)
		if err != nil {
			return nil, err
		}
	}

	if o.EpochHook != nil {
		s.SetEpochHook(o.EpochHook)
	}

	trainIdx, testIdx := d.Split(o.TestFraction, o.Seed+7)
	o.logf("step 4: training on %d matrices (%d epochs)", len(trainIdx), o.Epochs)
	samples, err := s.Samples(d, trainIdx)
	if err != nil {
		return nil, err
	}
	losses, err := s.TrainSamplesCtx(ctx, samples, cp, resume)
	partial := &Result{Selector: s, Dataset: d, Train: trainIdx, Test: testIdx}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cp != nil {
				o.logf("training interrupted after %d epochs this run; checkpoint flushed to %s", len(losses), o.CheckpointDir)
			} else {
				o.logf("training interrupted after %d epochs this run", len(losses))
			}
			return partial, err
		}
		return nil, err
	}
	if len(losses) > 0 {
		o.logf("        loss %.3f -> %.3f", losses[0], losses[len(losses)-1])
	}
	m, err := s.Evaluate(d, testIdx)
	if err != nil {
		return nil, err
	}
	o.logf("held-out accuracy: %.1f%%", m.Accuracy()*100)
	partial.Metrics = m
	return partial, nil
}

// trainStoreCtx is TrainCtx for a sharded corpus store: training
// streams one shard at a time (peak memory is bounded by shard size,
// not corpus size), and evaluation runs over held-out shards that the
// training stream never sees. Result.Dataset is nil on this path —
// the corpus was never materialised.
func trainStoreCtx(ctx context.Context, o Options, lab *machine.Labeler) (*Result, error) {
	o.logf("step 1: opening sharded corpus store %s", o.DatasetPath)
	store, report, err := dataset.OpenValidatedStore(o.DatasetPath, lab)
	if err != nil {
		return nil, err
	}
	if report != nil {
		o.logf("        store needed salvage: %d shard(s) repaired, %d record(s) dropped (see %s/salvage.json)",
			len(report.Shards), len(report.DroppedRecords), o.DatasetPath)
	}
	o.logf("        %d records in %d shards (%d duplicate appends skipped)",
		store.NumRecords(), store.NumShards(), store.Dupes())

	var (
		s      *selector.Selector
		resume *nn.Checkpoint
	)
	if o.Resume && o.CheckpointDir != "" {
		s, resume, err = selector.LoadCheckpoint(o.CheckpointDir)
		switch {
		case err == nil:
			o.logf("resuming from %s at epoch %d (loss %.3f)", o.CheckpointDir, resume.Epoch, resume.Loss)
			s.Cfg.Epochs = o.Epochs
			s.Cfg.Workers = o.Workers
		case errors.Is(err, nn.ErrNoCheckpoint):
			o.logf("no checkpoint in %s; starting fresh", o.CheckpointDir)
		default:
			return nil, fmt.Errorf("core: resuming from %s: %w", o.CheckpointDir, err)
		}
	}
	if s == nil {
		cfg := selector.DefaultConfig(o.Representation, store.Formats())
		cfg.Represent.Size = o.RepSize
		cfg.Represent.Bins = o.RepBins
		cfg.Epochs = o.Epochs
		cfg.Workers = o.Workers
		cfg.Seed = o.Seed
		o.logf("step 2+3: %s representation (%dx%d), late-merging CNN", cfg.Represent.Kind, o.RepSize, o.RepBins)
		s, err = selector.New(cfg)
		if err != nil {
			return nil, err
		}
	}

	var cp *nn.Checkpointer
	if o.CheckpointDir != "" {
		cp, err = nn.NewCheckpointer(o.CheckpointDir, o.CheckpointEvery, 3)
		if err != nil {
			return nil, err
		}
	}
	if o.EpochHook != nil {
		s.SetEpochHook(o.EpochHook)
	}

	trainShards, testShards := SplitShards(store.NumShards(), o.TestFraction, o.Seed+7)
	o.logf("step 4: streaming %d shards for training, %d held out (%d epochs)",
		len(trainShards), len(testShards), o.Epochs)
	losses, err := s.TrainStreamCtx(ctx, &ShardSubset{Store: store, Idx: trainShards}, cp, resume)
	partial := &Result{Selector: s}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cp != nil {
				o.logf("training interrupted after %d epochs this run; checkpoint flushed to %s", len(losses), o.CheckpointDir)
			} else {
				o.logf("training interrupted after %d epochs this run", len(losses))
			}
			return partial, err
		}
		return nil, err
	}
	if len(losses) > 0 {
		o.logf("        loss %.3f -> %.3f", losses[0], losses[len(losses)-1])
	}
	if len(testShards) == 0 {
		o.logf("store has a single shard; no held-out shard to evaluate")
		return partial, nil
	}
	m, err := s.EvaluateStream(&ShardSubset{Store: store, Idx: testShards})
	if err != nil {
		return nil, err
	}
	o.logf("held-out accuracy: %.1f%%", m.Accuracy()*100)
	partial.Metrics = m
	return partial, nil
}

// SplitShards partitions shard positions into train and held-out sets
// with a seeded shuffle — the shard-granular analogue of
// Dataset.Split. A single-shard store yields no held-out set.
func SplitShards(n int, testFraction float64, seed int64) (train, test []int) {
	if n <= 0 {
		return nil, nil
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTest := int(float64(n)*testFraction + 0.5)
	if nTest >= n {
		nTest = n - 1
	}
	if nTest == 0 && n > 1 && testFraction > 0 {
		nTest = 1
	}
	test = append([]int(nil), perm[:nTest]...)
	train = append([]int(nil), perm[nTest:]...)
	sort.Ints(train)
	sort.Ints(test)
	return train, test
}

// ShardSubset restricts a corpus store to a subset of its shard
// positions — the held-out-split view used by streaming training and
// evaluation. It satisfies selector.ShardStream.
type ShardSubset struct {
	Store *dataset.CorpusStore
	Idx   []int
}

// NumShards implements selector.ShardStream.
func (v *ShardSubset) NumShards() int { return len(v.Idx) }

// Shard implements selector.ShardStream.
func (v *ShardSubset) Shard(i int) (*dataset.Dataset, error) { return v.Store.Shard(v.Idx[i]) }

// relabelWallClock replaces each record's label and times with wall-
// clock measurements of the Go kernels, honouring cancellation between
// matrices.
func relabelWallClock(ctx context.Context, d *dataset.Dataset, workers int) error {
	for i := range d.Records {
		r := &d.Records[i]
		label, times, err := machine.MeasureLabelCtx(ctx, r.Matrix(), d.Formats, machine.MeasureOpts{Workers: workers, Repeats: 3})
		if err != nil {
			return err
		}
		r.Label = label
		r.Times = times
	}
	return nil
}

// Predict loads a MatrixMarket file and returns the model's chosen
// format with per-format probabilities.
func Predict(s *selector.Selector, mtxPath string) (sparse.Format, map[sparse.Format]float64, error) {
	m, err := sparse.ReadMatrixMarketFile(mtxPath)
	if err != nil {
		return 0, nil, err
	}
	return s.Predict(m)
}

// BestFormat converts m to the selector's predicted best format, ready
// for repeated SpMV use.
func BestFormat(s *selector.Selector, m *sparse.COO) (sparse.Matrix, sparse.Format, error) {
	f, _, err := s.Predict(m)
	if err != nil {
		return nil, 0, err
	}
	out, err := sparse.Convert(m, f)
	if err != nil {
		return nil, 0, err
	}
	return out, f, nil
}
