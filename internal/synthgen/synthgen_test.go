package synthgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sparse"
)

func TestBandedStructure(t *testing.T) {
	c := Banded(100, 2, 1.0, 1)
	st := sparse.ComputeStats(c)
	if st.Bandwidth > 2 {
		t.Fatalf("bandwidth = %d, want <= 2", st.Bandwidth)
	}
	if st.NumDiags != 5 {
		t.Fatalf("diags = %d, want 5", st.NumDiags)
	}
	if st.DIAFill < 0.95 {
		t.Fatalf("DIAFill = %v", st.DIAFill)
	}
}

func TestMultiDiagCount(t *testing.T) {
	c := MultiDiag(200, 7, 1.0, 2)
	st := sparse.ComputeStats(c)
	if st.NumDiags != 7 {
		t.Fatalf("diags = %d, want 7", st.NumDiags)
	}
	if st.MainDiagFill != 1 {
		t.Fatalf("principal diagonal fill = %v, want 1", st.MainDiagFill)
	}
}

func TestUniformRowsExact(t *testing.T) {
	c := Uniform(150, 6, 0, 3)
	for i, n := range c.RowCounts() {
		if n != 6 {
			t.Fatalf("row %d has %d nonzeros, want 6", i, n)
		}
	}
}

func TestUniformJitterBounded(t *testing.T) {
	c := Uniform(150, 8, 3, 4)
	for i, n := range c.RowCounts() {
		if n < 5 || n > 11 {
			t.Fatalf("row %d has %d nonzeros outside [5,11]", i, n)
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	c := PowerLaw(500, 8, 1.5, 5)
	st := sparse.ComputeStats(c)
	if st.RowNNZCV < 1 {
		t.Fatalf("powerlaw CV = %v, want skewed (>1)", st.RowNNZCV)
	}
	if st.MinRowNNZ < 1 {
		t.Fatal("powerlaw produced empty rows")
	}
}

func TestBlockedAlignment(t *testing.T) {
	c := Blocked(64, 10, 4, 1.0, 6)
	st := sparse.ComputeStats(c)
	if st.BSRFill < 0.99 {
		t.Fatalf("BSRFill = %v, want ~1 for full blocks", st.BSRFill)
	}
}

func TestHypersparseShape(t *testing.T) {
	c := Hypersparse(50000, 500, 800, 7)
	rows, cols := c.Dims()
	if rows != 50000 || cols != 500 {
		t.Fatalf("dims %dx%d", rows, cols)
	}
	st := sparse.ComputeStats(c)
	if st.EmptyRows < 49000 {
		t.Fatalf("empty rows = %d, want almost all", st.EmptyRows)
	}
}

func TestKroneckerInBounds(t *testing.T) {
	c := Kronecker(300, 3000, 0.57, 0.19, 0.19, 8)
	rows, cols := c.Dims()
	if rows != 300 || cols != 300 {
		t.Fatalf("dims %dx%d", rows, cols)
	}
	if c.NNZ() == 0 {
		t.Fatal("empty kronecker")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Banded(100, 3, 0.7, 42)
	b := Banded(100, 3, 0.7, 42)
	if !a.Equal(b) {
		t.Fatal("Banded not deterministic")
	}
	if Banded(100, 3, 0.7, 43).Equal(a) {
		t.Fatal("seed has no effect")
	}
}

// --- derivations ---

func TestCropWindow(t *testing.T) {
	c := Banded(100, 1, 1.0, 9)
	sub := Crop(c, 10, 10, 20, 30)
	rows, cols := sub.Dims()
	if rows != 20 || cols != 30 {
		t.Fatalf("crop dims %dx%d", rows, cols)
	}
	// Band entries survive relative to the window.
	d := sub.Dense()
	if d[0] == 0 { // original (10,10) is on the diagonal
		t.Fatal("diagonal entry lost in crop")
	}
}

func TestCropClampsAndNonEmpty(t *testing.T) {
	c := Banded(50, 1, 1.0, 10)
	sub := Crop(c, 45, 45, 100, 100)
	rows, cols := sub.Dims()
	if rows != 5 || cols != 5 {
		t.Fatalf("clamped dims %dx%d", rows, cols)
	}
	empty := Crop(sparse.MustCOO(10, 10, []sparse.Entry{{Row: 9, Col: 9, Val: 1}}), 0, 0, 3, 3)
	if empty.NNZ() == 0 {
		t.Fatal("crop must keep at least one nonzero")
	}
}

func TestPermutePreservesRowDistribution(t *testing.T) {
	c := PowerLaw(200, 6, 1.2, 11)
	p := Permute(c, 99)
	if p.NNZ() != c.NNZ() {
		t.Fatalf("permute changed nnz %d -> %d", c.NNZ(), p.NNZ())
	}
	// Row-length multiset preserved.
	a, b := c.RowCounts(), p.RowCounts()
	ha := map[int]int{}
	hb := map[int]int{}
	for i := range a {
		ha[a[i]]++
		hb[b[i]]++
	}
	for k, v := range ha {
		if hb[k] != v {
			t.Fatal("row-length distribution changed")
		}
	}
	// But diagonal structure destroyed for banded input.
	band := Banded(200, 1, 1.0, 12)
	stBefore := sparse.ComputeStats(band)
	stAfter := sparse.ComputeStats(Permute(band, 5))
	if stAfter.NumDiags <= stBefore.NumDiags {
		t.Fatal("permutation should scatter diagonals")
	}
}

func TestOverlayAndCompose(t *testing.T) {
	a := Banded(50, 1, 1.0, 13)
	b := Uniform(80, 3, 0, 14)
	o := Overlay(a, b)
	rows, cols := o.Dims()
	if rows != 80 || cols != 80 {
		t.Fatalf("overlay dims %dx%d", rows, cols)
	}
	d := DiagBlockCompose(a, b)
	rows, cols = d.Dims()
	if rows != 130 || cols != 130 {
		t.Fatalf("compose dims %dx%d", rows, cols)
	}
	if d.NNZ() != a.NNZ()+b.NNZ() {
		t.Fatal("compose lost entries")
	}
}

func TestSparsifyKeepsSubset(t *testing.T) {
	c := Uniform(100, 10, 0, 15)
	s := Sparsify(c, 0.5, 16)
	if s.NNZ() >= c.NNZ() || s.NNZ() == 0 {
		t.Fatalf("sparsify nnz %d of %d", s.NNZ(), c.NNZ())
	}
	if Sparsify(c, 0.0, 17).NNZ() == 0 {
		t.Fatal("sparsify must keep at least one entry")
	}
}

// --- mixture ---

func TestBuildDeterministic(t *testing.T) {
	specs := SampleSpecs(30, 7, 512)
	for _, s := range specs {
		if !Build(s).Equal(Build(s)) {
			t.Fatalf("Build(%+v) not deterministic", s)
		}
	}
}

func TestSampleSpecsCoverFamilies(t *testing.T) {
	specs := SampleSpecs(400, 1, 512)
	seen := map[Family]bool{}
	derived := 0
	for _, s := range specs {
		seen[s.Family] = true
		if s.Derive != DeriveNone {
			derived++
		}
	}
	for _, f := range Families() {
		if !seen[f] {
			t.Fatalf("family %v never sampled in 400 draws", f)
		}
	}
	if derived < 50 || derived > 250 {
		t.Fatalf("derived count %d outside expected band", derived)
	}
}

// Property: every sampled spec builds a valid non-empty matrix within
// the size bound.
func TestSampledSpecsBuildProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := SampleSpec(rng, 256)
		c := Build(s)
		rows, cols := c.Dims()
		return c.NNZ() > 0 && rows > 0 && cols > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The mixture labelled on the CPU platform must produce a class
// distribution in the same shape as Table 2: CSR dominant, all four
// formats represented.
func TestMixtureLabelDistributionCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution check is slow")
	}
	specs := SampleSpecs(300, 11, 512)
	lab := machine.NewLabeler(machine.XeonLike(), 1)
	counts := map[sparse.Format]int{}
	for i, s := range specs {
		st := sparse.ComputeStats(Build(s))
		f, _ := lab.Label(st, uint64(i))
		counts[f]++
	}
	t.Logf("CPU label distribution: %v", counts)
	csrFrac := float64(counts[sparse.FormatCSR]) / 300
	if csrFrac < 0.35 || csrFrac > 0.92 {
		t.Fatalf("CSR fraction %.2f outside plausible band; counts %v", csrFrac, counts)
	}
	for _, f := range sparse.CPUFormats() {
		if counts[f] == 0 {
			t.Fatalf("format %v never wins; counts %v", f, counts)
		}
	}
}

// On the GPU platform all formats except COO must win somewhere, and COO
// must win nowhere (Table 3).
func TestMixtureLabelDistributionGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution check is slow")
	}
	specs := SampleSpecs(300, 12, 512)
	lab := machine.NewLabeler(machine.TitanLike(), 2)
	counts := map[sparse.Format]int{}
	for i, s := range specs {
		st := sparse.ComputeStats(Build(s))
		f, _ := lab.Label(st, uint64(i))
		counts[f]++
	}
	t.Logf("GPU label distribution: %v", counts)
	// Table 3 reports a hard zero for COO; with measurement noise an
	// occasional boundary flip is tolerated (<1%), matching the paper's
	// "COO never wins" up to noise.
	if counts[sparse.FormatCOO] > 3 {
		t.Fatalf("COO won on GPU more than noise allows: %v", counts)
	}
	for _, f := range []sparse.Format{sparse.FormatCSR, sparse.FormatELL, sparse.FormatBSR, sparse.FormatCSR5, sparse.FormatHYB} {
		if counts[f] == 0 {
			t.Fatalf("format %v never wins on GPU; counts %v", f, counts)
		}
	}
}
