package synthgen

import (
	"math/rand"

	"repro/internal/sparse"
)

// The paper expands the SuiteSparse collection from 2757 to 9200
// matrices with "simple heuristics like cropping, transforming and
// randomized combinations of the original matrices" (§7.1). These are
// those operators.

// Crop extracts the h×w submatrix of c anchored at (r0, c0), clamped to
// c's bounds. The result keeps at least one nonzero (a unit diagonal
// entry is inserted if the window is empty).
func Crop(c *sparse.COO, r0, c0, h, w int) *sparse.COO {
	rows, cols := c.Dims()
	if r0 < 0 {
		r0 = 0
	}
	if c0 < 0 {
		c0 = 0
	}
	if r0+h > rows {
		h = rows - r0
	}
	if c0+w > cols {
		w = cols - c0
	}
	if h < 1 {
		h = 1
	}
	if w < 1 {
		w = 1
	}
	var es []sparse.Entry
	for k, v := range c.Vals {
		r, cl := int(c.Rows[k]), int(c.Cols[k])
		if r >= r0 && r < r0+h && cl >= c0 && cl < c0+w {
			es = append(es, sparse.Entry{Row: r - r0, Col: cl - c0, Val: v})
		}
	}
	if len(es) == 0 {
		es = append(es, sparse.Entry{Row: 0, Col: 0, Val: 1})
	}
	return sparse.MustCOO(h, w, es)
}

// Permute applies a random symmetric row/column permutation — it
// scrambles diagonal and block structure while preserving the row-length
// distribution, turning e.g. DIA-friendly matrices into CSR-friendly
// ones.
func Permute(c *sparse.COO, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	rows, cols := c.Dims()
	rp := rng.Perm(rows)
	cp := rng.Perm(cols)
	es := make([]sparse.Entry, 0, c.NNZ())
	for k, v := range c.Vals {
		es = append(es, sparse.Entry{Row: rp[c.Rows[k]], Col: cp[c.Cols[k]], Val: v})
	}
	return sparse.MustCOO(rows, cols, es)
}

// Overlay sums two matrices after embedding both in a common bounding
// shape, producing composites whose structure mixes the parents'.
func Overlay(a, b *sparse.COO) *sparse.COO {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	rows, cols := ar, ac
	if br > rows {
		rows = br
	}
	if bc > cols {
		cols = bc
	}
	es := append(a.Entries(), b.Entries()...)
	return sparse.MustCOO(rows, cols, es)
}

// DiagBlockCompose places a and b as diagonal blocks of a larger matrix
// — the block-structured composition pattern of multiphysics problems.
func DiagBlockCompose(a, b *sparse.COO) *sparse.COO {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	es := a.Entries()
	for _, e := range b.Entries() {
		es = append(es, sparse.Entry{Row: e.Row + ar, Col: e.Col + ac, Val: e.Val})
	}
	return sparse.MustCOO(ar+br, ac+bc, es)
}

// Sparsify keeps each entry with probability keep, thinning the matrix
// while preserving its coarse spatial pattern.
func Sparsify(c *sparse.COO, keep float64, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	rows, cols := c.Dims()
	var es []sparse.Entry
	for k, v := range c.Vals {
		if rng.Float64() < keep {
			es = append(es, sparse.Entry{Row: int(c.Rows[k]), Col: int(c.Cols[k]), Val: v})
		}
	}
	if len(es) == 0 && c.NNZ() > 0 {
		es = append(es, sparse.Entry{Row: int(c.Rows[0]), Col: int(c.Cols[0]), Val: c.Vals[0]})
	}
	return sparse.MustCOO(rows, cols, es)
}
