package synthgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Spec describes one generated matrix; Build(spec) is deterministic, so
// datasets can be stored as compact spec lists and regenerated on
// demand.
type Spec struct {
	Family Family
	N      int // primary dimension
	Rows   int // used by non-square families (0 = N)
	Cols   int // 0 = N
	NNZ    int
	Per    int     // per-row nonzeros (uniform / powerlaw)
	Band   int     // banded half-width
	NDiags int     // multidiag count
	Blocks int     // blocked count
	Fill   float64 // in-structure fill probability
	Alpha  float64 // powerlaw exponent
	Jitter int     // uniform row-length jitter
	Seed   int64

	// Derivation applied after generation (0 = none).
	Derive     int // 1=crop, 2=permute, 3=sparsify
	DeriveSeed int64
}

// Derivation codes for Spec.Derive.
const (
	DeriveNone = iota
	DeriveCrop
	DerivePermute
	DeriveSparsify
)

// Build generates the matrix described by the spec.
func Build(s Spec) *sparse.COO {
	rows, cols := s.Rows, s.Cols
	if rows == 0 {
		rows = s.N
	}
	if cols == 0 {
		cols = s.N
	}
	var c *sparse.COO
	switch s.Family {
	case FamilyBanded:
		c = Banded(s.N, s.Band, s.Fill, s.Seed)
	case FamilyMultiDiag:
		c = MultiDiag(s.N, s.NDiags, s.Fill, s.Seed)
	case FamilyUniform:
		c = Uniform(s.N, s.Per, s.Jitter, s.Seed)
	case FamilyRandom:
		c = Random(rows, cols, s.NNZ, s.Seed)
	case FamilyPowerLaw:
		c = PowerLaw(s.N, s.Per, s.Alpha, s.Seed)
	case FamilyBlocked:
		c = Blocked(s.N, s.Blocks, sparse.DefaultBlockSize, s.Fill, s.Seed)
	case FamilyHypersparse:
		c = Hypersparse(rows, cols, s.NNZ, s.Seed)
	case FamilyKronecker:
		c = Kronecker(s.N, s.NNZ, 0.57, 0.19, 0.19, s.Seed)
	case FamilyUniformOutliers:
		c = UniformOutliers(s.N, s.Per, s.Blocks, s.NNZ, s.Seed)
	default:
		panic(fmt.Sprintf("synthgen: unknown family %v", s.Family))
	}
	switch s.Derive {
	case DeriveCrop:
		rng := rand.New(rand.NewSource(s.DeriveSeed))
		r, cl := c.Dims()
		h := r/2 + rng.Intn(r/2+1)
		w := cl/2 + rng.Intn(cl/2+1)
		c = Crop(c, rng.Intn(r-h+1), rng.Intn(cl-w+1), h, w)
	case DerivePermute:
		c = Permute(c, s.DeriveSeed)
	case DeriveSparsify:
		rng := rand.New(rand.NewSource(s.DeriveSeed))
		c = Sparsify(c, 0.4+0.5*rng.Float64(), s.DeriveSeed+1)
	}
	return c
}

// SampleSpec draws one spec from the mixture. The family weights and
// parameter ranges are tuned so that, labelled by the machine cost
// models, the class distribution resembles the paper's Table 2 (CSR is
// the dominant winner at roughly three quarters, with meaningful DIA,
// ELL and COO minorities) while keeping the decision boundaries fuzzy:
// every family's parameter range straddles the crossover where its
// "natural" format stops winning. maxN bounds the matrix dimension.
func SampleSpec(rng *rand.Rand, maxN int) Spec {
	if maxN < 192 {
		maxN = 192
	}
	// Log-uniform sizes: real corpora span orders of magnitude, and the
	// large tail is where gather locality (and therefore spatial
	// structure) decides format winners.
	n := int(192 * math.Pow(float64(maxN)/192, rng.Float64()))
	if n > maxN {
		n = maxN
	}
	s := Spec{N: n, Seed: rng.Int63()}
	w := rng.Float64()
	switch {
	case w < 0.17: // banded: DIA when narrow and dense, CSR beyond
		s.Family = FamilyBanded
		s.Band = 1 + rng.Intn(16)
		s.Fill = 0.5 + 0.5*rng.Float64()
	case w < 0.28: // multidiag: DIA for few dense diagonals
		s.Family = FamilyMultiDiag
		s.NDiags = 2 + rng.Intn(16)
		s.Fill = 0.55 + 0.45*rng.Float64()
	case w < 0.44: // uniform rows: ELL when jitter small
		s.Family = FamilyUniform
		s.Per = 2 + rng.Intn(24)
		s.Jitter = rng.Intn(1 + s.Per/3)
	case w < 0.58: // unstructured scatter: CSR home turf
		s.Family = FamilyRandom
		s.NNZ = n * (2 + rng.Intn(24))
	case w < 0.68: // skewed rows: CSR vs HYB/CSR5 boundary
		s.Family = FamilyPowerLaw
		s.Per = 3 + rng.Intn(16)
		s.Alpha = 0.6 + 1.2*rng.Float64()
	case w < 0.76: // blocked: BSR on GPU, CSR/ELL on CPU
		s.Family = FamilyBlocked
		s.Blocks = n/2 + rng.Intn(2*n)
		s.Fill = 0.5 + 0.5*rng.Float64()
	case w < 0.83: // uniform + heavy outliers: HYB vs ELL vs CSR5 boundary
		s.Family = FamilyUniformOutliers
		s.Per = 8 + rng.Intn(24)
		s.Blocks = 1 + rng.Intn(6)  // outlier row count
		s.NNZ = n/4 + rng.Intn(n/2) // outlier row length
	case w < 0.94: // hypersparse tall: COO territory
		s.Family = FamilyHypersparse
		s.Rows = n * (20 + rng.Intn(40))
		s.Cols = n
		s.NNZ = n/4 + rng.Intn(2*n)
	default: // kronecker graphs: skewed + clustered
		s.Family = FamilyKronecker
		s.NNZ = n * (2 + rng.Intn(12))
	}
	// A third of the dataset are derived variants, mirroring the
	// paper's expansion of SuiteSparse.
	if rng.Float64() < 0.33 {
		s.Derive = 1 + rng.Intn(3)
		s.DeriveSeed = rng.Int63()
	}
	return s
}

// SampleSpecs draws count specs deterministically from the seed.
func SampleSpecs(count int, seed int64, maxN int) []Spec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]Spec, count)
	for i := range specs {
		specs[i] = SampleSpec(rng, maxN)
	}
	return specs
}
