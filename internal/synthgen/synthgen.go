// Package synthgen generates the structured sparse matrices that stand
// in for the paper's dataset (2757 SuiteSparse matrices plus ~6400
// derived variants). Each family produces the spatial nonzero structure
// that makes one storage format competitive — dense diagonals (DIA),
// uniform row lengths (ELL), dense blocks (BSR), skewed row lengths
// (HYB/CSR5), unstructured scatter (CSR), hypersparse tall matrices
// (COO) — with continuous parameters so the decision boundaries between
// formats are non-trivial. The paper's derivation operators (cropping,
// transposing, permutation, combination) are implemented in derive.go.
//
// All generation is deterministic in the seed.
package synthgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Family enumerates the structural generator families.
type Family int

// Generator families.
const (
	FamilyBanded          Family = iota // contiguous band around the diagonal
	FamilyMultiDiag                     // a handful of scattered dense diagonals
	FamilyUniform                       // same nonzero count per row
	FamilyRandom                        // Erdős–Rényi scatter
	FamilyPowerLaw                      // Zipf-distributed row lengths
	FamilyBlocked                       // dense 4×4 (± jitter) blocks
	FamilyHypersparse                   // rows ≫ nnz
	FamilyKronecker                     // self-similar RMAT-style scatter
	FamilyUniformOutliers               // uniform rows + a few heavy rows (HYB's habitat)
	numFamilies
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilyBanded:
		return "banded"
	case FamilyMultiDiag:
		return "multidiag"
	case FamilyUniform:
		return "uniform"
	case FamilyRandom:
		return "random"
	case FamilyPowerLaw:
		return "powerlaw"
	case FamilyBlocked:
		return "blocked"
	case FamilyHypersparse:
		return "hypersparse"
	case FamilyKronecker:
		return "kronecker"
	case FamilyUniformOutliers:
		return "uniform+outliers"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Families returns all generator families.
func Families() []Family {
	fs := make([]Family, numFamilies)
	for i := range fs {
		fs[i] = Family(i)
	}
	return fs
}

// val returns a nonzero value; format selection depends on structure,
// not magnitudes, but realistic spread exercises numeric paths.
func val(rng *rand.Rand) float64 {
	return rng.NormFloat64()*10 + 0.5
}

// sampleDistinct returns k distinct values in [0,n) in O(k) expected
// time (O(n) via a permutation when k is a large fraction of n).
func sampleDistinct(rng *rand.Rand, n, k int) []int {
	if k >= n {
		return rng.Perm(n)
	}
	if k > n/2 {
		return rng.Perm(n)[:k]
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		j := rng.Intn(n)
		if _, ok := seen[j]; !ok {
			seen[j] = struct{}{}
			out = append(out, j)
		}
	}
	return out
}

// Banded generates an n×n matrix with a contiguous band of half-width
// band around the principal diagonal, each in-band entry present with
// probability fill.
func Banded(n, band int, fill float64, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	var es []sparse.Entry
	for i := 0; i < n; i++ {
		for d := -band; d <= band; d++ {
			j := i + d
			if j < 0 || j >= n {
				continue
			}
			if fill >= 1 || rng.Float64() < fill {
				es = append(es, sparse.Entry{Row: i, Col: j, Val: val(rng)})
			}
		}
	}
	ensureNonEmpty(&es, n, rng)
	return sparse.MustCOO(n, n, es)
}

// MultiDiag generates an n×n matrix with ndiags dense diagonals at
// random offsets (always including the principal diagonal), each with
// the given fill probability — the stencil-like structure DIA is built
// for when ndiags is small and fill is high.
func MultiDiag(n, ndiags int, fill float64, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	seen := map[int]bool{0: true}
	offsets := []int{0}
	for len(offsets) < ndiags {
		off := rng.Intn(2*n-1) - (n - 1)
		if !seen[off] {
			seen[off] = true
			offsets = append(offsets, off)
		}
	}
	var es []sparse.Entry
	for _, off := range offsets {
		for i := 0; i < n; i++ {
			j := i + off
			if j < 0 || j >= n {
				continue
			}
			if fill >= 1 || rng.Float64() < fill {
				es = append(es, sparse.Entry{Row: i, Col: j, Val: val(rng)})
			}
		}
	}
	ensureNonEmpty(&es, n, rng)
	return sparse.MustCOO(n, n, es)
}

// Uniform generates an n×n matrix with exactly per nonzeros in every
// row. jitter adds ±jitter to individual rows (0 = perfectly uniform,
// the ELL sweet spot).
func Uniform(n, per, jitter int, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	var es []sparse.Entry
	for i := 0; i < n; i++ {
		k := per
		if jitter > 0 {
			k += rng.Intn(2*jitter+1) - jitter
		}
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		for _, j := range sampleDistinct(rng, n, k) {
			es = append(es, sparse.Entry{Row: i, Col: j, Val: val(rng)})
		}
	}
	return sparse.MustCOO(n, n, es)
}

// Random generates rows×cols Erdős–Rényi scatter with the given number
// of nonzeros (duplicates collapse, so the result may hold slightly
// fewer).
func Random(rows, cols, nnz int, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	es := make([]sparse.Entry, 0, nnz)
	for k := 0; k < nnz; k++ {
		es = append(es, sparse.Entry{Row: rng.Intn(rows), Col: rng.Intn(cols), Val: val(rng)})
	}
	ensureNonEmpty(&es, min(rows, cols), rng)
	return sparse.MustCOO(rows, cols, es)
}

// PowerLaw generates an n×n matrix whose row lengths follow an
// approximate Zipf distribution with exponent alpha and mean roughly
// avgPer — the skewed-row regime where HYB and CSR5 earn their keep.
func PowerLaw(n, avgPer int, alpha float64, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	var es []sparse.Entry
	// Sample row weights w_i ∝ rank^{-alpha} over a random permutation
	// of rows, scaled to the target total nnz.
	perm := rng.Perm(n)
	weights := make([]float64, n)
	total := 0.0
	for r := range weights {
		w := math.Pow(float64(r+1), -alpha)
		weights[perm[r]] = w
		total += w
	}
	target := float64(n * avgPer)
	for i := 0; i < n; i++ {
		k := int(weights[i] / total * target)
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		if k > n/2 {
			for _, j := range sampleDistinct(rng, n, k) {
				es = append(es, sparse.Entry{Row: i, Col: j, Val: val(rng)})
			}
		} else {
			for c := 0; c < k; c++ {
				es = append(es, sparse.Entry{Row: i, Col: rng.Intn(n), Val: val(rng)})
			}
		}
	}
	return sparse.MustCOO(n, n, es)
}

// Blocked generates an n×n matrix of nblocks dense bxb blocks at
// block-aligned positions concentrated around the principal diagonal
// (FEM meshes couple spatially neighbouring unknowns, so their block
// sparsity is band-dominated) with interior fill blockFill — the
// structure BSR is built for.
func Blocked(n, nblocks, b int, blockFill float64, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	if b <= 0 {
		b = sparse.DefaultBlockSize
	}
	grid := n / b
	if grid < 1 {
		grid = 1
	}
	bandwidth := grid/8 + 1
	var es []sparse.Entry
	for bl := 0; bl < nblocks; bl++ {
		br := rng.Intn(grid)
		bc := br + rng.Intn(2*bandwidth+1) - bandwidth
		if bc < 0 {
			bc = 0
		}
		if bc >= grid {
			bc = grid - 1
		}
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				r, c := br*b+i, bc*b+j
				if r >= n || c >= n {
					continue
				}
				if blockFill >= 1 || rng.Float64() < blockFill {
					es = append(es, sparse.Entry{Row: r, Col: c, Val: val(rng)})
				}
			}
		}
	}
	ensureNonEmpty(&es, n, rng)
	return sparse.MustCOO(n, n, es)
}

// Hypersparse generates a rows×cols matrix with nnz ≪ rows: most rows
// empty, the regime where CSR's per-row costs dominate and COO wins.
func Hypersparse(rows, cols, nnz int, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	es := make([]sparse.Entry, 0, nnz)
	for k := 0; k < nnz; k++ {
		es = append(es, sparse.Entry{Row: rng.Intn(rows), Col: rng.Intn(cols), Val: val(rng)})
	}
	ensureNonEmpty(&es, min(rows, cols), rng)
	return sparse.MustCOO(rows, cols, es)
}

// Kronecker generates RMAT-style self-similar scatter: each nonzero
// walks levels of a 2×2 probability grid (a,b;c,d), producing the
// clustered, skewed structure of graph adjacency matrices.
func Kronecker(n, nnz int, a, b, c float64, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	levels := 0
	for 1<<levels < n {
		levels++
	}
	size := 1 << levels
	es := make([]sparse.Entry, 0, nnz)
	for k := 0; k < nnz; k++ {
		r, cl := 0, 0
		for l := 0; l < levels; l++ {
			u := rng.Float64()
			switch {
			case u < a:
				// top-left
			case u < a+b:
				cl |= 1 << l
			case u < a+b+c:
				r |= 1 << l
			default:
				r |= 1 << l
				cl |= 1 << l
			}
		}
		if r < n && cl < n {
			es = append(es, sparse.Entry{Row: r, Col: cl, Val: val(rng)})
		}
	}
	_ = size
	ensureNonEmpty(&es, n, rng)
	return sparse.MustCOO(n, n, es)
}

// UniformOutliers generates an n×n matrix where every row has exactly
// per nonzeros except for a few outlier rows of length heavy — the
// mostly-regular-with-exceptions structure HYB splits profitably and
// that blows up ELL's padded slab.
func UniformOutliers(n, per, outliers, heavy int, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	if heavy > n {
		heavy = n
	}
	heavyRows := map[int]bool{}
	for len(heavyRows) < outliers && len(heavyRows) < n {
		heavyRows[rng.Intn(n)] = true
	}
	var es []sparse.Entry
	for i := 0; i < n; i++ {
		k := per
		if heavyRows[i] {
			k = heavy
		}
		if k > n {
			k = n
		}
		for _, j := range sampleDistinct(rng, n, k) {
			es = append(es, sparse.Entry{Row: i, Col: j, Val: val(rng)})
		}
	}
	return sparse.MustCOO(n, n, es)
}

// ensureNonEmpty guarantees at least one nonzero so downstream stats and
// representations never divide by zero.
func ensureNonEmpty(es *[]sparse.Entry, n int, rng *rand.Rand) {
	if len(*es) == 0 && n > 0 {
		*es = append(*es, sparse.Entry{Row: rng.Intn(n), Col: rng.Intn(n), Val: 1})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
