// Package represent implements the fixed-size matrix representations of
// Section 4 of the paper: the traditional scaled binary image, the
// density augmentation, and the distance-histogram representation
// (Algorithm 1) that the paper identifies as the most effective input
// for the CNN selector.
package represent

import (
	"fmt"

	"repro/internal/sparse"
	"repro/internal/tensor"
)

// Kind selects which representation a selector is trained on, matching
// the three CNN variants of Table 2.
type Kind int

// Representation kinds.
const (
	// KindBinary is the traditional image-scaling normalisation: a
	// size×size 0/1 map of block occupancy (one input channel).
	KindBinary Kind = iota
	// KindBinaryDensity augments binary with the block-density map
	// (two input channels with heterogeneous value semantics — the
	// late-merging motivation).
	KindBinaryDensity
	// KindHistogram is Algorithm 1: row and column histograms of the
	// distance |row−col| to the principal diagonal (two channels with
	// no one-to-one positional correspondence).
	KindHistogram
)

// String names the representation as in Table 2.
func (k Kind) String() string {
	switch k {
	case KindBinary:
		return "Binary"
	case KindBinaryDensity:
		return "Binary+Density"
	case KindHistogram:
		return "Histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns all representation kinds in Table 2 order.
func Kinds() []Kind { return []Kind{KindBinary, KindBinaryDensity, KindHistogram} }

// Config fixes the representation geometry. The paper uses 128×128
// images and 128×50 histograms; experiments here default to smaller
// sizes for pure-Go training speed (see DESIGN.md).
type Config struct {
	Kind Kind
	Size int // image edge / histogram rows
	Bins int // histogram bins (KindHistogram only)
}

// Channels returns the number of input channels the representation
// produces (the number of CNN towers in the late-merging structure).
func (c Config) Channels() int {
	if c.Kind == KindBinary {
		return 1
	}
	return 2
}

// ChannelShape returns the (height, width) of one channel.
func (c Config) ChannelShape() (int, int) {
	if c.Kind == KindHistogram {
		return c.Size, c.Bins
	}
	return c.Size, c.Size
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Size <= 0 {
		return fmt.Errorf("represent: non-positive size %d", c.Size)
	}
	if c.Kind == KindHistogram && c.Bins <= 0 {
		return fmt.Errorf("represent: histogram needs positive bins, got %d", c.Bins)
	}
	return nil
}

// PaperConfig returns the geometry used in the paper's evaluation:
// 128×128 images, 128×50 histograms (§7.2).
func PaperConfig(k Kind) Config {
	c := Config{Kind: k, Size: 128}
	if k == KindHistogram {
		c.Bins = 50
	}
	return c
}

// Normalize converts a matrix into the fixed-size tensor channels the
// CNN consumes. Each returned tensor has shape (1, H, W) — one channel
// per tower for the late-merging structure; the early-merging baseline
// stacks them.
func Normalize(m *sparse.COO, cfg Config) ([]*tensor.Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Kind {
	case KindBinary:
		b, _ := binaryDensity(m, cfg.Size)
		return []*tensor.Tensor{b}, nil
	case KindBinaryDensity:
		b, d := binaryDensity(m, cfg.Size)
		return []*tensor.Tensor{b, d}, nil
	case KindHistogram:
		r := HistNorm(m, cfg.Size, cfg.Bins, false)
		c := HistNorm(m, cfg.Size, cfg.Bins, true)
		return []*tensor.Tensor{r, c}, nil
	default:
		return nil, fmt.Errorf("represent: unknown kind %v", cfg.Kind)
	}
}

// binaryDensity down-samples the matrix onto a size×size grid and
// returns the binary occupancy map and the density map (fraction of
// each block's cells that are nonzero), the Figure 4/5 representations.
// Matrices smaller than the grid are handled by the same block mapping
// (blocks may cover fractional cells; density then uses the true block
// area).
func binaryDensity(m *sparse.COO, size int) (binary, density *tensor.Tensor) {
	rows, cols := m.Dims()
	binary = tensor.New(1, size, size)
	density = tensor.New(1, size, size)
	counts := make([]float64, size*size)
	for k := range m.Vals {
		br := int(int64(m.Rows[k]) * int64(size) / int64(rows))
		bc := int(int64(m.Cols[k]) * int64(size) / int64(cols))
		counts[br*size+bc]++
	}
	bd := binary.Data()
	dd := density.Data()
	for i := 0; i < size; i++ {
		// Block area in original cells: rows in block i × cols in block j.
		r0 := int(int64(i) * int64(rows) / int64(size))
		r1 := int(int64(i+1) * int64(rows) / int64(size))
		if r1 == r0 {
			r1 = r0 + 1
		}
		for j := 0; j < size; j++ {
			c0 := int(int64(j) * int64(cols) / int64(size))
			c1 := int(int64(j+1) * int64(cols) / int64(size))
			if c1 == c0 {
				c1 = c0 + 1
			}
			cnt := counts[i*size+j]
			if cnt > 0 {
				bd[i*size+j] = 1
				area := float64((r1 - r0) * (c1 - c0))
				d := cnt / area
				if d > 1 {
					d = 1
				}
				dd[i*size+j] = d
			}
		}
	}
	return binary, density
}

// HistNorm is Algorithm 1 of the paper: it builds an r×bins histogram
// tensor where row i aggregates the original rows mapped onto it and bin
// b counts nonzeros whose distance |row−col| from the principal diagonal
// falls in [b, b+1)·MaxDim/bins. byColumn builds the column-histogram
// variant (distance histogram over columns instead of rows). Values are
// normalised to [0,1] by the maximum bin count.
func HistNorm(m *sparse.COO, r, bins int, byColumn bool) *tensor.Tensor {
	rows, cols := m.Dims()
	out := tensor.New(1, r, bins)
	data := out.Data()
	primary := rows
	if byColumn {
		primary = cols
	}
	maxDim := rows
	if cols > maxDim {
		maxDim = cols
	}
	for k := range m.Vals {
		p := int(m.Rows[k])
		if byColumn {
			p = int(m.Cols[k])
		}
		// Row index in the histogram (line 8 of Algorithm 1, in integer
		// arithmetic to avoid the float ScaleRatio edge cases).
		hr := int(int64(p) * int64(r) / int64(primary))
		dist := int(m.Rows[k]) - int(m.Cols[k])
		if dist < 0 {
			dist = -dist
		}
		// Bin index (line 9). dist < maxDim always, so bin < bins except
		// in the dist == maxDim-0 corner; clamp for safety.
		bin := int(int64(bins) * int64(dist) / int64(maxDim))
		if bin >= bins {
			bin = bins - 1
		}
		data[hr*bins+bin]++
	}
	// Normalise to [0,1] by the largest bin (final step of §4).
	max := 0.0
	for _, v := range data {
		if v > max {
			max = v
		}
	}
	if max > 0 {
		for i := range data {
			data[i] /= max
		}
	}
	return out
}

// SampleNorm is the third traditional normalisation §4 mentions
// alongside cropping and scaling: sample `size` rows and columns of the
// original matrix (evenly spaced) and emit the binary occupancy of the
// sampled sub-grid. Like scaling it loses the subtle structure that
// format selection needs — kept as the explored-and-rejected baseline
// it is in the paper, and for the representation ablations.
func SampleNorm(m *sparse.COO, size int) *tensor.Tensor {
	rows, cols := m.Dims()
	out := tensor.New(1, size, size)
	// Membership maps from original index to sampled slot (or -1).
	rowSlot := make([]int32, rows)
	for i := range rowSlot {
		rowSlot[i] = -1
	}
	colSlot := make([]int32, cols)
	for j := range colSlot {
		colSlot[j] = -1
	}
	for s := 0; s < size; s++ {
		ri := int(int64(s) * int64(rows) / int64(size))
		ci := int(int64(s) * int64(cols) / int64(size))
		rowSlot[ri] = int32(s)
		colSlot[ci] = int32(s)
	}
	d := out.Data()
	for k := range m.Vals {
		r := rowSlot[m.Rows[k]]
		c := colSlot[m.Cols[k]]
		if r >= 0 && c >= 0 {
			d[int(r)*size+int(c)] = 1
		}
	}
	return out
}

// CropNorm is the first traditional normalisation §4 mentions: keep the
// top-left size×size window of the original matrix as a binary map,
// discarding everything outside it. Kept for the same reason as
// SampleNorm.
func CropNorm(m *sparse.COO, size int) *tensor.Tensor {
	out := tensor.New(1, size, size)
	d := out.Data()
	for k := range m.Vals {
		r, c := int(m.Rows[k]), int(m.Cols[k])
		if r < size && c < size {
			d[r*size+c] = 1
		}
	}
	return out
}
