package represent

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// figure4Matrix is the 8×8 example of Figure 4(a): irregular diagonals
// whose down-sampled binary map becomes a perfect diagonal — the
// information-loss example motivating the histogram representation.
func figure4Matrix(t *testing.T) *sparse.COO {
	t.Helper()
	// Nonzeros laid out as in Figure 4 (a) of the paper (8x8):
	// values are irrelevant to the representations; positions matter.
	entries := []sparse.Entry{
		{Row: 0, Col: 0, Val: 45}, {Row: 0, Col: 1, Val: -2}, {Row: 1, Col: 1, Val: 5},
		{Row: 2, Col: 2, Val: 89}, {Row: 2, Col: 3, Val: 37},
		{Row: 3, Col: 2, Val: 43}, {Row: 3, Col: 3, Val: 94},
		{Row: 4, Col: 0, Val: 77}, {Row: 4, Col: 4, Val: 15},
		{Row: 5, Col: 4, Val: 78}, {Row: 5, Col: 5, Val: 36},
		{Row: 6, Col: 7, Val: 23},
		{Row: 7, Col: 3, Val: 17}, {Row: 7, Col: 6, Val: 11},
	}
	return sparse.MustCOO(8, 8, entries)
}

func TestBinaryLosesDiagonalInfo(t *testing.T) {
	// Down-sampling Figure 4(a) to 4×4 must produce occupancy 1 on the
	// principal block diagonal — the "perfect diagonal" confusion the
	// paper describes.
	m := figure4Matrix(t)
	reps, err := Normalize(m, Config{Kind: KindBinary, Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := reps[0]
	for i := 0; i < 4; i++ {
		if b.At(0, i, i) != 1 {
			t.Fatalf("block diagonal (%d,%d) not set", i, i)
		}
	}
}

func TestDensityValues(t *testing.T) {
	// Figure 5(a): density of each 2×2 block = nonzeros/4.
	m := figure4Matrix(t)
	reps, err := Normalize(m, Config{Kind: KindBinaryDensity, Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := reps[1]
	want := [4][4]float64{
		{0.75, 0, 0, 0}, // paper's figure shows 0.5 for a variant matrix; ours counts (0,0),(0,1),(1,1)
		{0, 1, 0, 0},
		{0.25, 0, 0.75, 0},
		{0, 0.25, 0, 0.5},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(d.At(0, i, j)-want[i][j]) > 1e-12 {
				t.Fatalf("density[%d][%d] = %v, want %v", i, j, d.At(0, i, j), want[i][j])
			}
		}
	}
}

// Algorithm 1 worked example from the paper (§4): the bottom two rows of
// the Figure 4(a) matrix yield histogram row [2, 0, 1, 0] before
// normalisation.
func TestHistNormPaperExample(t *testing.T) {
	m := figure4Matrix(t)
	h := HistNorm(m, 4, 4, false)
	// Bottom histogram row (rows 6 and 7): entries (6,5) dist 1 -> bin 0;
	// (7,3) dist 4 -> bin 2; (7,6) dist 1 -> bin 0. Row = [2 0 1 0].
	// Normalised by the global max bin count.
	raw := []float64{2, 0, 1, 0}
	// Find the global max by recomputing: row 1 of R gets rows 2,3:
	// dists 0,1,1,0 -> bins 0,0,0,0 -> 4 entries? dist(2,3)=1 -> bin 0.
	// The max bin is 4 (row 1, bin 0).
	for b := 0; b < 4; b++ {
		if got, want := h.At(0, 3, b), raw[b]/4; math.Abs(got-want) > 1e-12 {
			t.Fatalf("hist[3][%d] = %v, want %v", b, got, want)
		}
	}
}

func TestHistNormValuesIn01(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(200), 1+rng.Intn(200)
		var es []sparse.Entry
		for k := 0; k < rng.Intn(500); k++ {
			es = append(es, sparse.Entry{Row: rng.Intn(rows), Col: rng.Intn(cols), Val: 1})
		}
		if len(es) == 0 {
			es = append(es, sparse.Entry{Row: 0, Col: 0, Val: 1})
		}
		m := sparse.MustCOO(rows, cols, es)
		for _, byCol := range []bool{false, true} {
			h := HistNorm(m, 16, 8, byCol)
			max := 0.0
			for _, v := range h.Data() {
				if v < 0 || v > 1 {
					return false
				}
				if v > max {
					max = v
				}
			}
			if max != 1 { // normalised by the max bin, which must hit 1
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// A banded matrix concentrates histogram mass in bin 0; a permuted
// version spreads it — the discriminative signal DIA selection needs,
// which the binary map loses (Figure 4).
func TestHistogramSeparatesDiagonalFromScatter(t *testing.T) {
	n := 256
	var es []sparse.Entry
	for i := 0; i < n; i++ {
		es = append(es, sparse.Entry{Row: i, Col: i, Val: 1})
		if i+1 < n {
			es = append(es, sparse.Entry{Row: i, Col: i + 1, Val: 1})
		}
	}
	band := sparse.MustCOO(n, n, es)
	rng := rand.New(rand.NewSource(1))
	var es2 []sparse.Entry
	for k := 0; k < 2*n; k++ {
		es2 = append(es2, sparse.Entry{Row: rng.Intn(n), Col: rng.Intn(n), Val: 1})
	}
	scatter := sparse.MustCOO(n, n, es2)

	hb := HistNorm(band, 16, 8, false)
	hs := HistNorm(scatter, 16, 8, false)
	massInBin0 := func(h interface{ At(...int) float64 }) float64 {
		tot, b0 := 0.0, 0.0
		for r := 0; r < 16; r++ {
			for b := 0; b < 8; b++ {
				v := h.At(0, r, b)
				tot += v
				if b == 0 {
					b0 += v
				}
			}
		}
		return b0 / tot
	}
	if massInBin0(hb) < 0.99 {
		t.Fatalf("banded bin-0 mass = %v, want ~1", massInBin0(hb))
	}
	if massInBin0(hs) > 0.6 {
		t.Fatalf("scatter bin-0 mass = %v, want spread out", massInBin0(hs))
	}
}

func TestNormalizeShapes(t *testing.T) {
	m := figure4Matrix(t)
	cases := []struct {
		cfg      Config
		channels int
		h, w     int
	}{
		{Config{Kind: KindBinary, Size: 16}, 1, 16, 16},
		{Config{Kind: KindBinaryDensity, Size: 16}, 2, 16, 16},
		{Config{Kind: KindHistogram, Size: 16, Bins: 10}, 2, 16, 10},
	}
	for _, tc := range cases {
		reps, err := Normalize(m, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != tc.channels {
			t.Fatalf("%v: %d channels, want %d", tc.cfg.Kind, len(reps), tc.channels)
		}
		for _, r := range reps {
			if r.Dim(0) != 1 || r.Dim(1) != tc.h || r.Dim(2) != tc.w {
				t.Fatalf("%v: shape %v, want (1,%d,%d)", tc.cfg.Kind, r.Shape(), tc.h, tc.w)
			}
		}
		if tc.cfg.Channels() != tc.channels {
			t.Fatalf("Channels() mismatch for %v", tc.cfg.Kind)
		}
		h, w := tc.cfg.ChannelShape()
		if h != tc.h || w != tc.w {
			t.Fatalf("ChannelShape() mismatch for %v", tc.cfg.Kind)
		}
	}
}

func TestNormalizeSmallerMatrixThanGrid(t *testing.T) {
	// 3×3 matrix onto a 16×16 grid: blocks cover fractional cells.
	m := sparse.MustCOO(3, 3, []sparse.Entry{{Row: 0, Col: 0, Val: 1}, {Row: 2, Col: 2, Val: 1}})
	reps, err := Normalize(m, Config{Kind: KindBinaryDensity, Size: 16})
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Sum() == 0 {
		t.Fatal("binary map empty for small matrix")
	}
	for _, v := range reps[1].Data() {
		if v < 0 || v > 1 {
			t.Fatalf("density out of range: %v", v)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Kind: KindBinary, Size: 0}).Validate(); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := (Config{Kind: KindHistogram, Size: 8}).Validate(); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := Normalize(figure4Matrix(t), Config{Kind: Kind(9), Size: 8}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestPaperConfig(t *testing.T) {
	for _, k := range Kinds() {
		c := PaperConfig(k)
		if c.Size != 128 {
			t.Fatalf("%v size %d", k, c.Size)
		}
		if k == KindHistogram && c.Bins != 50 {
			t.Fatalf("histogram bins %d", c.Bins)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KindBinary.String() != "Binary" || KindBinaryDensity.String() != "Binary+Density" ||
		KindHistogram.String() != "Histogram" {
		t.Fatal("kind names")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind String")
	}
}

func TestSampleNormLosesOffGridEntries(t *testing.T) {
	// A 100x100 matrix with nonzeros only at odd coordinates and a 10-
	// point sample grid at multiples of 10: sampling sees nothing — the
	// information-loss failure §4 attributes to traditional methods.
	var es []sparse.Entry
	for i := 1; i < 100; i += 2 {
		es = append(es, sparse.Entry{Row: i, Col: i, Val: 1})
	}
	m := sparse.MustCOO(100, 100, es)
	s := SampleNorm(m, 10)
	if s.Sum() != 0 {
		t.Fatalf("sampling should miss off-grid entries, got mass %v", s.Sum())
	}
	// The histogram keeps the diagonal signal the sample dropped.
	h := HistNorm(m, 10, 5, false)
	if h.Sum() == 0 {
		t.Fatal("histogram lost the diagonal entirely")
	}
}

func TestSampleNormSeesOnGridEntries(t *testing.T) {
	m := sparse.MustCOO(100, 100, []sparse.Entry{{Row: 0, Col: 0, Val: 1}, {Row: 50, Col: 50, Val: 1}})
	s := SampleNorm(m, 10)
	if s.At(0, 0, 0) != 1 || s.At(0, 5, 5) != 1 {
		t.Fatalf("on-grid entries missed: %v", s.Data())
	}
}

func TestCropNormWindow(t *testing.T) {
	m := sparse.MustCOO(100, 100, []sparse.Entry{
		{Row: 2, Col: 3, Val: 1},
		{Row: 90, Col: 90, Val: 1}, // outside the crop
	})
	c := CropNorm(m, 10)
	if c.At(0, 2, 3) != 1 {
		t.Fatal("in-window entry missed")
	}
	if c.Sum() != 1 {
		t.Fatalf("crop kept out-of-window mass: %v", c.Sum())
	}
}
