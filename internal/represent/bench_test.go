package represent

import (
	"testing"

	"repro/internal/synthgen"
)

// BenchmarkNormalize measures representation construction — the
// inference-path preprocessing step — per representation kind at the
// paper's 128×128 grid. Guarded by scripts/benchgate.
func BenchmarkNormalize(b *testing.B) {
	m := synthgen.Random(2048, 2048, 2048*8, 1)
	for _, k := range Kinds() {
		cfg := Config{Kind: k, Size: 128, Bins: 50}
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Normalize(m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
