package dtree

import (
	"math"
	"math/rand"
	"testing"
)

func xorData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func TestForestLearnsXOR(t *testing.T) {
	X, y := xorData(500, 1)
	f, err := TrainForest(X, y, 2, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range X {
		if f.Predict(X[i]) == y[i] {
			hits++
		}
	}
	if float64(hits)/500 < 0.93 {
		t.Fatalf("forest accuracy %v", float64(hits)/500)
	}
}

func TestForestValidation(t *testing.T) {
	if _, err := TrainForest(nil, nil, 2, DefaultForestConfig()); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestForestProbaSumsToOne(t *testing.T) {
	X, y := xorData(200, 2)
	f, err := TrainForest(X, y, 2, ForestConfig{Trees: 9, Tree: DefaultConfig(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := f.PredictProba([]float64{0.9, 0.1})
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("proba sums to %v", sum)
	}
	if len(f.Trees) != 9 {
		t.Fatalf("trees %d", len(f.Trees))
	}
}

func TestForestDefaultsApplied(t *testing.T) {
	X, y := xorData(100, 4)
	f, err := TrainForest(X, y, 2, ForestConfig{Tree: DefaultConfig(), SampleFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != DefaultForestConfig().Trees {
		t.Fatalf("default tree count not applied: %d", len(f.Trees))
	}
}

// Bagging reduces variance: the forest's test accuracy should be at
// least the single tree's on noisy data (allowing small slack).
func TestForestAtLeastTree(t *testing.T) {
	X, y := xorData(400, 5)
	// Inject label noise.
	rng := rand.New(rand.NewSource(6))
	for i := range y {
		if rng.Float64() < 0.15 {
			y[i] = 1 - y[i]
		}
	}
	Xt, yt := xorData(400, 7)
	tree, err := Train(X, y, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	forest, err := TrainForest(X, y, 2, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc := func(pred func([]float64) int) float64 {
		hits := 0
		for i := range Xt {
			if pred(Xt[i]) == yt[i] {
				hits++
			}
		}
		return float64(hits) / float64(len(Xt))
	}
	at, af := acc(tree.Predict), acc(forest.Predict)
	t.Logf("tree %.3f forest %.3f", at, af)
	if af < at-0.05 {
		t.Fatalf("forest (%.3f) clearly below single tree (%.3f)", af, at)
	}
}
