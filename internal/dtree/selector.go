package dtree

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/sparse"
)

// This file is the serving face of the decision-tree baseline: a
// Selector that pairs a CART tree with the format list its classes
// index and the published SMAT feature pipeline, plus envelope
// serialisation so a trained tree ships as a checksummed deploy
// artifact. The serving ladder degrades to this rung when the CNN path
// is broken — the paper's own comparison guarantees it is strictly
// better than the always-CSR floor.

// ErrBadSelector reports a selector that cannot classify (nil tree,
// empty or mismatched format list).
var ErrBadSelector = errors.New("dtree: invalid selector")

// Selector is a deployable decision-tree format selector.
type Selector struct {
	Tree    *Tree
	Formats []sparse.Format
}

// validate checks the structural invariants once, at load/build time.
func (s *Selector) validate() error {
	if s == nil || s.Tree == nil || s.Tree.root == nil {
		return fmt.Errorf("%w: missing tree", ErrBadSelector)
	}
	if len(s.Formats) == 0 {
		return fmt.Errorf("%w: empty format list", ErrBadSelector)
	}
	if s.Tree.NumClasses > len(s.Formats) {
		return fmt.Errorf("%w: tree has %d classes for %d formats", ErrBadSelector, s.Tree.NumClasses, len(s.Formats))
	}
	return nil
}

// Predict classifies a matrix through the published SMAT baseline
// feature pipeline. It validates the input, recovers any panic in
// feature extraction or tree walking into an error, and never returns
// a class outside the format list — the hardened entry point the
// serving ladder calls with the CNN already known sick.
func (s *Selector) Predict(m *sparse.COO) (f sparse.Format, err error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	if m == nil {
		return 0, fmt.Errorf("%w: nil matrix", ErrBadSelector)
	}
	if r, c := m.Dims(); r <= 0 || c <= 0 || m.NNZ() == 0 {
		return 0, fmt.Errorf("%w: degenerate %dx%d matrix with %d nonzeros", ErrBadSelector, r, c, m.NNZ())
	}
	defer func() {
		if r := recover(); r != nil {
			f, err = 0, fmt.Errorf("dtree: prediction panic: %v", r)
		}
	}()
	x := features.BaselineExtract(m)
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("dtree: non-finite feature vector")
		}
	}
	cls := s.Tree.Predict(x)
	if cls < 0 || cls >= len(s.Formats) {
		return 0, fmt.Errorf("dtree: class %d out of range for %d formats", cls, len(s.Formats))
	}
	return s.Formats[cls], nil
}

// FitBaseline trains a Selector on baseline feature vectors X with
// labels y indexing formats — the trainDT pipeline packaged as a
// deployable artifact.
func FitBaseline(X [][]float64, y []int, formats []sparse.Format, cfg Config) (*Selector, error) {
	if len(formats) == 0 {
		return nil, fmt.Errorf("%w: empty format list", ErrBadSelector)
	}
	t, err := Train(X, y, len(formats), cfg)
	if err != nil {
		return nil, err
	}
	s := &Selector{Tree: t, Formats: formats}
	return s, s.validate()
}

// Heuristic builds a hand-constructed selector encoding the published
// format-selection rules of the SMAT lineage over the baseline
// features: strongly diagonal structure → DIA, uniformly filled rows →
// ELL, everything else → CSR (the always-safe floor). It needs no
// training data, so the serving ladder always has a decision-tree rung
// even when no trained artifact was deployed. Formats absent from the
// given list degrade to CSR (or the first listed format when even CSR
// is absent).
func Heuristic(formats []sparse.Format) *Selector {
	class := func(f sparse.Format) int {
		for i, g := range formats {
			if g == f {
				return i
			}
		}
		for i, g := range formats {
			if g == sparse.FormatCSR {
				return i
			}
		}
		return 0
	}
	leaf := func(f sparse.Format) *node { return &node{class: class(f)} }
	// Feature indices into features.BaselineNames.
	const (
		featELLFill      = 10 // nnz / (rows * max_row_nnz)
		featNumDiagsFrac = 11 // occupied diagonals / max dim
	)
	root := &node{
		feature:   featNumDiagsFrac,
		threshold: 0.02,
		// Few occupied diagonals relative to the dimension: the DIA
		// dense-diagonal layout wastes little and vectorises well.
		left: leaf(sparse.FormatDIA),
		right: &node{
			feature:   featELLFill,
			threshold: 0.65,
			// Ragged rows: CSR. Uniform rows: ELL's padded layout wins.
			left:  leaf(sparse.FormatCSR),
			right: leaf(sparse.FormatELL),
		},
	}
	return &Selector{
		Tree:    &Tree{NumClasses: len(formats), root: root},
		Formats: formats,
	}
}

// --- serialisation ---

// flatNode is the gob wire form of one tree node; children are indices
// into the node slice (-1 for none), so the recursive structure
// round-trips without gob's reference tracking.
type flatNode struct {
	Class     int
	Feature   int
	Threshold float64
	Left      int
	Right     int
}

// selectorBlob is the single gob value on the wire.
type selectorBlob struct {
	NumClasses int
	Formats    []int
	Nodes      []flatNode
}

func flatten(n *node, out *[]flatNode) int {
	if n == nil {
		return -1
	}
	idx := len(*out)
	*out = append(*out, flatNode{Class: n.class, Feature: n.feature, Threshold: n.threshold, Left: -1, Right: -1})
	(*out)[idx].Left = flatten(n.left, out)
	(*out)[idx].Right = flatten(n.right, out)
	return idx
}

func unflatten(nodes []flatNode, idx int, depth int) (*node, error) {
	if idx == -1 {
		return nil, nil
	}
	if idx < 0 || idx >= len(nodes) || depth > len(nodes) {
		return nil, fmt.Errorf("dtree: corrupt tree encoding: node index %d of %d", idx, len(nodes))
	}
	fn := nodes[idx]
	n := &node{class: fn.Class, feature: fn.Feature, threshold: fn.Threshold}
	var err error
	if n.left, err = unflatten(nodes, fn.Left, depth+1); err != nil {
		return nil, err
	}
	if n.right, err = unflatten(nodes, fn.Right, depth+1); err != nil {
		return nil, err
	}
	if (n.left == nil) != (n.right == nil) {
		return nil, fmt.Errorf("dtree: corrupt tree encoding: half-split node %d", idx)
	}
	if n.left != nil && (n.feature < 0 || n.feature >= features.BaselineDim) {
		return nil, fmt.Errorf("dtree: corrupt tree encoding: feature %d out of range", n.feature)
	}
	return n, nil
}

// Save writes the selector to w as a raw gob stream (compose with
// nn.WriteEnvelope for at-rest artifacts — see SaveFile).
func (s *Selector) Save(w io.Writer) error {
	if err := s.validate(); err != nil {
		return err
	}
	blob := selectorBlob{NumClasses: s.Tree.NumClasses}
	for _, f := range s.Formats {
		blob.Formats = append(blob.Formats, int(f))
	}
	flatten(s.Tree.root, &blob.Nodes)
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("dtree: encoding: %w", err)
	}
	return nil
}

// Load reads a selector written by Save, validating the decoded
// structure (well-formed splits, in-range features and classes) so a
// corrupt-but-decodable artifact cannot reach the serving path.
func Load(r io.Reader) (*Selector, error) {
	var blob selectorBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("dtree: decoding: %w", err)
	}
	if len(blob.Nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrBadSelector)
	}
	root, err := unflatten(blob.Nodes, 0, 0)
	if err != nil {
		return nil, err
	}
	s := &Selector{Tree: &Tree{NumClasses: blob.NumClasses, root: root}}
	for _, f := range blob.Formats {
		s.Formats = append(s.Formats, sparse.Format(f))
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	// Every leaf class must index the format list.
	for i, n := range blob.Nodes {
		if n.Left == -1 && (n.Class < 0 || n.Class >= len(s.Formats)) {
			return nil, fmt.Errorf("dtree: corrupt tree encoding: leaf %d class %d out of range", i, n.Class)
		}
	}
	return s, nil
}

// SaveFile writes the selector inside the versioned, CRC-checksummed
// envelope, atomically — the same at-rest guarantees as CNN model
// artifacts.
func (s *Selector) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return err
	}
	return nn.WriteEnvelopeFile(path, nn.EnvelopeDTree, buf.Bytes())
}

// LoadFile reads a selector artifact, rejecting corrupt, truncated or
// wrong-kind files with the typed envelope errors.
func LoadFile(path string) (*Selector, error) {
	payload, err := nn.ReadEnvelopeFile(path, nn.EnvelopeDTree)
	if err != nil {
		return nil, fmt.Errorf("dtree: loading %s: %w", path, err)
	}
	return Load(bytes.NewReader(payload))
}
