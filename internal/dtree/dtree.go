// Package dtree implements the CART decision-tree classifier that stands
// in for the paper's state-of-the-art baseline (the SMAT decision tree
// of Li et al. PLDI'13 and the classification tree of Sedaghati et al.
// ICS'15): Gini-impurity splits on hand-crafted feature vectors with
// depth and leaf-size regularisation.
package dtree

import (
	"fmt"
	"sort"
)

// Config controls tree growth. The defaults mirror the shallow,
// regularised trees of the baseline papers (deep unpruned trees overfit
// the small minority classes badly).
type Config struct {
	MaxDepth       int
	MinLeafSamples int
	MinGain        float64
}

// DefaultConfig is the baseline configuration.
func DefaultConfig() Config {
	return Config{MaxDepth: 10, MinLeafSamples: 5, MinGain: 1e-4}
}

// Tree is a trained CART classifier.
type Tree struct {
	NumClasses int
	root       *node
	cfg        Config
}

type node struct {
	// Leaf payload.
	class  int
	counts []int
	// Split payload (children nil for leaves).
	feature   int
	threshold float64
	left      *node
	right     *node
}

// Train grows a tree on the feature matrix X (one row per sample) and
// labels y in [0, numClasses).
func Train(X [][]float64, y []int, numClasses int, cfg Config) (*Tree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("dtree: bad training set: %d samples, %d labels", len(X), len(y))
	}
	for _, label := range y {
		if label < 0 || label >= numClasses {
			return nil, fmt.Errorf("dtree: label %d out of range [0,%d)", label, numClasses)
		}
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = DefaultConfig().MaxDepth
	}
	if cfg.MinLeafSamples <= 0 {
		cfg.MinLeafSamples = 1
	}
	t := &Tree{NumClasses: numClasses, cfg: cfg}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(X, y, idx, 0)
	return t, nil
}

func (t *Tree) grow(X [][]float64, y []int, idx []int, depth int) *node {
	counts := make([]int, t.NumClasses)
	for _, i := range idx {
		counts[y[i]]++
	}
	n := &node{counts: counts, class: argmax(counts)}
	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeafSamples || pure(counts) {
		return n
	}
	bestGain := t.cfg.MinGain
	bestFeat, bestThresh := -1, 0.0
	parentImp := gini(counts, len(idx))
	nfeat := len(X[idx[0]])
	order := make([]int, len(idx))
	for f := 0; f < nfeat; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		leftCounts := make([]int, t.NumClasses)
		rightCounts := append([]int(nil), counts...)
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			leftCounts[y[i]]++
			rightCounts[y[i]]--
			nl := pos + 1
			nr := len(order) - nl
			if nl < t.cfg.MinLeafSamples || nr < t.cfg.MinLeafSamples {
				continue
			}
			v, vNext := X[order[pos]][f], X[order[pos+1]][f]
			if v == vNext {
				continue // cannot split between equal values
			}
			gain := parentImp -
				(float64(nl)*gini(leftCounts, nl)+float64(nr)*gini(rightCounts, nr))/float64(len(order))
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (v + vNext) / 2
			}
		}
	}
	if bestFeat < 0 {
		return n
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return n
	}
	n.feature = bestFeat
	n.threshold = bestThresh
	n.left = t.grow(X, y, li, depth+1)
	n.right = t.grow(X, y, ri, depth+1)
	return n
}

// Predict classifies one feature vector.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Depth returns the tree's depth (0 for a single leaf).
func (t *Tree) Depth() int { return depthOf(t.root) }

// Nodes returns the total node count.
func (t *Tree) Nodes() int { return nodesOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.left == nil {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func nodesOf(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + nodesOf(n.left) + nodesOf(n.right)
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		s -= p * p
	}
	return s
}

func pure(counts []int) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

func argmax(counts []int) int {
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}
