package dtree

import (
	"fmt"
	"math/rand"
)

// Forest is a bagged ensemble of CART trees with per-split feature
// subsampling (a random forest). The baseline papers use single trees;
// the forest is provided as the natural strengthening of the baseline
// (listed under future work in the auto-tuning literature) and is used
// by the ablation benchmarks.
type Forest struct {
	Trees      []*Tree
	NumClasses int
}

// ForestConfig controls ensemble growth.
type ForestConfig struct {
	Trees      int
	Tree       Config
	SampleFrac float64 // bootstrap fraction per tree (default 1.0)
	Seed       int64
}

// DefaultForestConfig is a 25-tree forest over the default CART
// configuration.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 25, Tree: DefaultConfig(), SampleFrac: 1.0, Seed: 1}
}

// TrainForest grows a bagged forest.
func TrainForest(X [][]float64, y []int, numClasses int, cfg ForestConfig) (*Forest, error) {
	if cfg.Trees <= 0 {
		cfg.Trees = DefaultForestConfig().Trees
	}
	if cfg.SampleFrac <= 0 || cfg.SampleFrac > 1 {
		cfg.SampleFrac = 1
	}
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("dtree: bad training set: %d samples, %d labels", len(X), len(y))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{NumClasses: numClasses}
	n := int(float64(len(X)) * cfg.SampleFrac)
	if n < 1 {
		n = 1
	}
	for t := 0; t < cfg.Trees; t++ {
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(len(X))
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree, err := Train(bx, by, numClasses, cfg.Tree)
		if err != nil {
			return nil, err
		}
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}

// Predict classifies by majority vote.
func (f *Forest) Predict(x []float64) int {
	votes := make([]int, f.NumClasses)
	for _, t := range f.Trees {
		votes[t.Predict(x)]++
	}
	return argmax(votes)
}

// PredictProba returns the vote distribution.
func (f *Forest) PredictProba(x []float64) []float64 {
	votes := make([]float64, f.NumClasses)
	for _, t := range f.Trees {
		votes[t.Predict(x)]++
	}
	for i := range votes {
		votes[i] /= float64(len(f.Trees))
	}
	return votes
}
