package dtree

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/sparse"
)

func diagMatrix(n int) *sparse.COO {
	var es []sparse.Entry
	for i := 0; i < n; i++ {
		es = append(es, sparse.Entry{Row: i, Col: i, Val: 2})
	}
	return sparse.MustCOO(n, n, es)
}

func raggedMatrix(n int) *sparse.COO {
	rng := rand.New(rand.NewSource(5))
	var es []sparse.Entry
	for i := 0; i < n; i++ {
		es = append(es, sparse.Entry{Row: i, Col: rng.Intn(n), Val: 1})
	}
	// One heavy row to break ELL uniformity.
	for j := 0; j < n; j++ {
		es = append(es, sparse.Entry{Row: 0, Col: j, Val: 1})
	}
	return sparse.MustCOO(n, n, es)
}

func TestHeuristicSelectorPredicts(t *testing.T) {
	s := Heuristic(sparse.CPUFormats())
	f, err := s.Predict(diagMatrix(64))
	if err != nil {
		t.Fatal(err)
	}
	if f != sparse.FormatDIA {
		t.Fatalf("pure diagonal predicted %v, want DIA", f)
	}
	f, err = s.Predict(raggedMatrix(64))
	if err != nil {
		t.Fatal(err)
	}
	if f != sparse.FormatCSR {
		t.Fatalf("ragged matrix predicted %v, want CSR", f)
	}
}

// TestHeuristicMissingFormatsDegrade: a format the rule set would pick
// but the platform does not offer degrades to CSR, never to an invalid
// class.
func TestHeuristicMissingFormatsDegrade(t *testing.T) {
	s := Heuristic([]sparse.Format{sparse.FormatCSR, sparse.FormatELL})
	f, err := s.Predict(diagMatrix(64))
	if err != nil {
		t.Fatal(err)
	}
	if f != sparse.FormatCSR {
		t.Fatalf("missing DIA degraded to %v, want CSR", f)
	}
}

func TestSelectorRejectsDegenerateInput(t *testing.T) {
	s := Heuristic(sparse.CPUFormats())
	if _, err := s.Predict(nil); err == nil {
		t.Fatal("nil matrix accepted")
	}
	empty := &sparse.COO{}
	if _, err := s.Predict(empty); err == nil {
		t.Fatal("empty matrix accepted")
	}
	var nilSel *Selector
	if _, err := nilSel.Predict(diagMatrix(4)); !errors.Is(err, ErrBadSelector) {
		t.Fatalf("nil selector: %v", err)
	}
}

// TestFitBaselineRoundTrip: train on separable data, serialise through
// the envelope, reload, and check the predictions survive.
func TestFitBaselineRoundTrip(t *testing.T) {
	formats := sparse.CPUFormats()
	mats := []*sparse.COO{diagMatrix(32), diagMatrix(48), raggedMatrix(32), raggedMatrix(48)}
	labels := []int{2, 2, 1, 1} // DIA, DIA, CSR, CSR under CPUFormats order
	var X [][]float64
	for _, m := range mats {
		X = append(X, features.BaselineExtract(m))
	}
	cfg := DefaultConfig()
	cfg.MinLeafSamples = 1
	s, err := FitBaseline(X, labels, formats, cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "dtree.gob")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range mats {
		want, err := s.Predict(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Predict(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("matrix %d: reloaded tree predicts %v, original %v", i, got, want)
		}
	}
}

func TestLoadRejectsCorruptArtifacts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dtree.gob")
	s := Heuristic(sparse.CPUFormats())
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation and bit flips must be rejected by the envelope.
	bad := filepath.Join(dir, "bad.gob")
	if err := os.WriteFile(bad, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("truncated artifact accepted")
	}
	flip := append([]byte(nil), raw...)
	flip[len(flip)-3] ^= 0x40
	if err := os.WriteFile(bad, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("corrupt artifact accepted")
	}
	// A wrong-kind envelope (valid checksum, different artifact type).
	if err := nn.WriteEnvelopeFile(bad, nn.EnvelopeSelector, []byte("nope")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); !errors.Is(err, nn.ErrWrongKind) {
		t.Fatalf("wrong-kind artifact: %v", err)
	}
	// A decodable blob with an out-of-range leaf class.
	var buf bytes.Buffer
	blob := selectorBlob{NumClasses: 2, Formats: []int{1, 2}, Nodes: []flatNode{{Class: 7, Left: -1, Right: -1}}}
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		t.Fatal(err)
	}
	if err := nn.WriteEnvelopeFile(bad, nn.EnvelopeDTree, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("out-of-range leaf class accepted")
	}
}
