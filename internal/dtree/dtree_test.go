package dtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, 2, DefaultConfig()); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{5}, 2, DefaultConfig()); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{0}, 2, DefaultConfig()); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLearnsAxisAlignedSplit(t *testing.T) {
	var X [][]float64
	var y []int
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		if a > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	tree, err := Train(X, y, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range X {
		if tree.Predict(X[i]) == y[i] {
			hits++
		}
	}
	if hits < 198 {
		t.Fatalf("training accuracy %d/200", hits)
	}
	if tree.Predict([]float64{0.9, 0.5}) != 1 || tree.Predict([]float64{0.1, 0.5}) != 0 {
		t.Fatal("split threshold wrong")
	}
}

func TestLearnsXOROnlyWhenDeep(t *testing.T) {
	// XOR needs depth >= 2; a depth-1 stump cannot express it.
	var X [][]float64
	var y []int
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		if (a > 0.5) != (b > 0.5) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	deep, err := Train(X, y, 2, Config{MaxDepth: 4, MinLeafSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	hitsDeep := 0
	for i := range X {
		if deep.Predict(X[i]) == y[i] {
			hitsDeep++
		}
	}
	if float64(hitsDeep)/400 < 0.95 {
		t.Fatalf("deep tree accuracy %v", float64(hitsDeep)/400)
	}
	stump, err := Train(X, y, 2, Config{MaxDepth: 1, MinLeafSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	hitsStump := 0
	for i := range X {
		if stump.Predict(X[i]) == y[i] {
			hitsStump++
		}
	}
	if float64(hitsStump)/400 > 0.8 {
		t.Fatalf("stump should not solve XOR, got %v", float64(hitsStump)/400)
	}
}

func TestDepthRegularisation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		X = append(X, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Intn(3))
	}
	tree, err := Train(X, y, 3, Config{MaxDepth: 3, MinLeafSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Fatalf("depth %d exceeds max 3", tree.Depth())
	}
	if tree.Nodes() == 0 {
		t.Fatal("no nodes")
	}
}

func TestPureLeafStopsEarly(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{1, 1, 1, 1}
	tree, err := Train(X, y, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatalf("pure data should give a leaf, depth %d", tree.Depth())
	}
	if tree.Predict([]float64{99}) != 1 {
		t.Fatal("wrong class")
	}
}

func TestConstantFeaturesGiveLeaf(t *testing.T) {
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0, 1}
	tree, err := Train(X, y, 2, Config{MaxDepth: 5, MinLeafSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatal("cannot split constant features")
	}
}

// Property: predictions are always a class seen in training.
func TestPredictInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		k := 2 + rng.Intn(4)
		X := make([][]float64, n)
		y := make([]int, n)
		for i := range X {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.Intn(k)
		}
		tree, err := Train(X, y, k, DefaultConfig())
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			p := tree.Predict([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3})
			if p < 0 || p >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
