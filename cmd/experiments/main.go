// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run table2,fig9 -count 1200 -epochs 45
//
// Experiments: platforms, table2, table3, fig8, fig9, fig10, fig11,
// speedups, overhead, all. Output is plain text on stdout in the shape
// of the paper's tables.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/machine"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: platforms,table2,table3,fig8,fig9,fig10,fig11,speedups,overhead,sensitivity,labelmodes,heldout,all")
	quick := flag.Bool("quick", false, "use the quick (test-scale) options")
	count := flag.Int("count", 0, "override dataset size")
	maxN := flag.Int("maxn", 0, "override matrix dimension bound")
	folds := flag.Int("folds", 0, "override CV folds")
	epochs := flag.Int("epochs", 0, "override CNN epochs")
	repSize := flag.Int("repsize", 0, "override representation size")
	repBins := flag.Int("repbins", 0, "override histogram bins")
	seed := flag.Int64("seed", 0, "override seed")
	wallclock := flag.Bool("wallclock", false, "label the CPU corpus with real kernel timings (table2/fig8)")
	dataIn := flag.String("dataset", "", "reuse this pre-labeled xeonlike corpus (a gendata .bin file or a sharded store directory) for the CPU experiments instead of generating one")
	model := flag.String("model", "", "trained selector artifact for -run heldout")
	reportPath := flag.String("report", "", "write the heldout JSON report here (default stdout)")
	platform := flag.String("platform", "xeonlike", "platform for -run heldout")
	flag.Parse()

	o := experiments.Default()
	if *quick {
		o = experiments.Quick()
	}
	if *count > 0 {
		o.Count = *count
	}
	if *maxN > 0 {
		o.MaxN = *maxN
	}
	if *folds > 0 {
		o.Folds = *folds
	}
	if *epochs > 0 {
		o.Epochs = *epochs
	}
	if *repSize > 0 {
		o.RepSize = *repSize
	}
	if *repBins > 0 {
		o.RepBins = *repBins
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	o.WallClock = *wallclock
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}

	if want["heldout"] { // not in "all": needs -dataset (a store) and -model
		if *dataIn == "" || *model == "" {
			fmt.Fprintln(os.Stderr, "experiments: -run heldout requires -dataset (a corpus store directory) and -model")
			os.Exit(2)
		}
		rep, err := experiments.RunHeldout(experiments.HeldoutOptions{
			StorePath: *dataIn, ModelPath: *model, Platform: *platform, Seed: o.Seed,
		}, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		out := os.Stdout
		if *reportPath != "" {
			f, err := os.Create(*reportPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *reportPath != "" {
			fmt.Printf("heldout report written to %s\n", *reportPath)
		}
		return
	}

	if *dataIn != "" {
		// The CPU experiments reuse one pre-labeled corpus — either a
		// monolithic gendata artifact or a sharded store directory; the
		// typed load errors distinguish damage (regenerate) from platform
		// mismatch (wrong artifact) from semantic breakage (bug).
		lab := machine.NewLabeler(machine.XeonLike(), o.Seed)
		d, err := dataset.LoadValidatedAny(*dataIn, lab)
		switch {
		case errors.Is(err, dataset.ErrCorrupt):
			fmt.Fprintf(os.Stderr, "experiments: %s is corrupt or truncated (%v); regenerate it with gendata\n", *dataIn, err)
			os.Exit(1)
		case errors.Is(err, dataset.ErrMismatch):
			fmt.Fprintf(os.Stderr, "experiments: %s does not match the xeonlike CPU platform (%v); regenerate with gendata -platform xeonlike\n", *dataIn, err)
			os.Exit(1)
		case errors.Is(err, dataset.ErrInvalid):
			fmt.Fprintf(os.Stderr, "experiments: %s decodes but fails semantic validation (%v); regenerate it with gendata\n", *dataIn, err)
			os.Exit(1)
		case err != nil:
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		o.CPUData = d
		if o.Count != len(d.Records) {
			fmt.Fprintf(os.Stderr, "experiments: using %d records from %s (overriding -count %d)\n", len(d.Records), *dataIn, o.Count)
			o.Count = len(d.Records)
		}
	}

	all := want["all"]
	ran := 0
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	sep := func() { fmt.Println(strings.Repeat("-", 64)) }

	if all || want["platforms"] {
		experiments.RunPlatforms(os.Stdout)
		sep()
		ran++
	}
	if all || want["table2"] {
		if _, err := experiments.RunTable2(o, os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if all || want["table3"] {
		if _, err := experiments.RunTable3(o, os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if all || want["fig8"] {
		if _, err := experiments.RunFig8(o, os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if all || want["speedups"] {
		if _, _, err := experiments.RunSpeedupsGPU(o, os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if all || want["fig9"] {
		if _, err := experiments.RunFig9(o, os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if all || want["fig10"] {
		if err := experiments.RunFig10(os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if all || want["fig11"] {
		if _, err := experiments.RunFig11(o, os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if all || want["overhead"] {
		if _, err := experiments.RunOverhead(o, os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if want["sensitivity"] { // not in "all": trains four extra CNNs
		if _, err := experiments.RunSensitivity(o, os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if want["labelmodes"] { // not in "all": wall-clock timing pass
		if err := experiments.RunLabelModes(o, os.Stdout); err != nil {
			fail(err)
		}
		sep()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched -run %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}
