// Command train builds a CNN format selector for a platform — the
// equivalent of the paper artifact's `spmv_model.py train` mode. It
// generates and labels a corpus, trains the selector, reports held-out
// metrics, and saves the model (and optionally the dataset).
//
// With -checkpoint-dir the run snapshots training state periodically;
// an interrupted run (crash, Ctrl-C, SIGTERM) can then be continued
// from where it left off:
//
//	train -platform xeonlike -count 800 -epochs 40 -out model.gob
//	train -checkpoint-dir ckpt -epochs 40 -out model.gob   # interrupted...
//	train -checkpoint-dir ckpt -epochs 40 -out model.gob -resume
//
// Telemetry: -telemetry appends one JSON object per epoch (loss,
// training accuracy, gradient norm, learning rate, divergence
// retries, epoch and checkpoint wall-clock) to a JSONL file, and
// -metrics-addr serves the same statistics live as train_* gauges
// plus pprof, so a long run can be scraped or profiled mid-flight:
//
//	train -count 800 -epochs 40 -out model.gob \
//	    -telemetry train.jsonl -metrics-addr 127.0.0.1:6061
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dtree"
	"repro/internal/features"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/represent"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

func main() {
	platform := flag.String("platform", "xeonlike", "target platform: xeonlike, a8like, titanlike")
	count := flag.Int("count", 600, "number of training matrices")
	maxN := flag.Int("maxn", 2048, "matrix dimension bound")
	epochs := flag.Int("epochs", 40, "training epochs")
	rep := flag.String("rep", "histogram", "representation: binary, density, histogram")
	repSize := flag.Int("repsize", 32, "representation size")
	repBins := flag.Int("repbins", 16, "histogram bins")
	seed := flag.Int64("seed", 1, "random seed")
	wall := flag.Bool("wallclock", false, "label with real kernel timings instead of the platform model")
	out := flag.String("out", "model.gob", "output model file")
	dataIn := flag.String("dataset-in", "", "train on this pre-labeled corpus (a gendata artifact) instead of generating one; it must match -platform")
	dataOut := flag.String("dataset", "", "optional dataset output file (gob)")
	dtreeOut := flag.String("dtree-out", "", "optional decision-tree baseline artifact, trained on the same split (for serve -dtree)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for periodic training checkpoints")
	ckptEvery := flag.Int("checkpoint-every", 5, "checkpoint period in epochs")
	resume := flag.Bool("resume", false, "continue from the newest checkpoint in -checkpoint-dir")
	telemetryPath := flag.String("telemetry", "", "per-epoch JSONL telemetry file (loss, accuracy, grad norm, timings; empty disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve live training metrics and pprof on this address while the run is active (empty disables)")
	spmvTable := flag.String("spmv-table", "", "autotuned SpMV dispatch table JSON for -wallclock labeling kernels (empty keeps built-in defaults)")
	flag.Parse()

	if *spmvTable != "" {
		// -wallclock labels run the real SpMV kernels; a tuned dispatch
		// table makes those labels reflect the kernels production serves.
		tab, err := spmv.LoadTableFile(*spmvTable)
		if err != nil {
			fmt.Fprintln(os.Stderr, "train: spmv table ignored:", err)
		} else {
			spmv.Install(tab)
		}
	}

	var kind represent.Kind
	switch *rep {
	case "binary":
		kind = represent.KindBinary
	case "density":
		kind = represent.KindBinaryDensity
	case "histogram":
		kind = represent.KindHistogram
	default:
		fmt.Fprintf(os.Stderr, "train: unknown representation %q\n", *rep)
		os.Exit(2)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "train: -resume requires -checkpoint-dir")
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancels the run at the next epoch boundary; the
	// trainer flushes a final checkpoint before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Training telemetry: per-epoch JSONL (when -telemetry names a file)
	// and a live metrics registry, optionally scrapeable over HTTP while
	// the run is active (-metrics-addr). Both feed off the same epoch
	// hook, so a headless run costs nothing.
	var epochHook func(nn.EpochStats)
	if *telemetryPath != "" || *metricsAddr != "" {
		var sink io.Writer
		if *telemetryPath != "" {
			f, err := os.Create(*telemetryPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "train: telemetry:", err)
				os.Exit(1)
			}
			defer f.Close()
			sink = f
		}
		reg := obs.NewRegistry()
		obs.RuntimeGauges(reg)
		tel := obs.NewTrainingTelemetry(reg, sink)
		epochHook = func(st nn.EpochStats) {
			tel.OnEpoch(obs.EpochEvent{
				Epoch:             st.Epoch,
				Loss:              st.Loss,
				Accuracy:          st.Accuracy,
				GradNorm:          st.GradNorm,
				LR:                st.LR,
				Retries:           st.Retries,
				EpochSeconds:      st.Duration.Seconds(),
				Checkpointed:      st.Checkpointed,
				CheckpointSeconds: st.CheckpointDuration.Seconds(),
			})
		}
		if *metricsAddr != "" {
			ln, err := net.Listen("tcp", *metricsAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "train: metrics listener:", err)
				os.Exit(1)
			}
			srv := &http.Server{
				Handler:           obs.AdminHandler(obs.AdminConfig{Registry: reg, PProf: true}),
				ReadHeaderTimeout: 10 * time.Second,
			}
			fmt.Printf("train: metrics on http://%s/metrics\n", ln.Addr())
			go srv.Serve(ln)
			defer srv.Close()
		}
	}

	res, err := core.TrainCtx(ctx, core.Options{
		Platform: *platform, Count: *count, MaxN: *maxN,
		Representation: kind, RepSize: *repSize, RepBins: *repBins,
		Epochs: *epochs, Seed: *seed, WallClock: *wall, Log: os.Stdout,
		DatasetPath:   *dataIn,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Resume: *resume,
		EpochHook: epochHook,
	})
	switch {
	case errors.Is(err, dataset.ErrCorrupt):
		fmt.Fprintf(os.Stderr, "train: %s is corrupt or truncated (%v); regenerate it with gendata\n", *dataIn, err)
		os.Exit(1)
	case errors.Is(err, dataset.ErrMismatch):
		fmt.Fprintf(os.Stderr, "train: %s was labeled for a different platform or format set (%v); labels are architecture-dependent — regenerate with gendata -platform %s or change -platform\n", *dataIn, err, *platform)
		os.Exit(1)
	case errors.Is(err, dataset.ErrInvalid):
		fmt.Fprintf(os.Stderr, "train: %s decodes but fails semantic validation (%v); this is a corpus-builder bug, please report it\n", *dataIn, err)
		os.Exit(1)
	}
	if errors.Is(err, context.Canceled) {
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "train: interrupted; checkpoint flushed to %s (rerun with -resume to continue)\n", *ckptDir)
		} else {
			fmt.Fprintln(os.Stderr, "train: interrupted (no -checkpoint-dir, progress lost)")
		}
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	if res.Metrics != nil {
		fmt.Println(res.Metrics)
	}
	if err := res.Selector.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	fmt.Printf("model saved to %s\n", *out)
	if *dataOut != "" {
		if res.Dataset == nil {
			fmt.Fprintf(os.Stderr, "train: -dataset is not applicable when training from store %s (the store is already persistent)\n", *dataIn)
			os.Exit(1)
		}
		if err := res.Dataset.Save(*dataOut); err != nil {
			fmt.Fprintln(os.Stderr, "train:", err)
			os.Exit(1)
		}
		fmt.Printf("dataset saved to %s\n", *dataOut)
	}
	if *dtreeOut != "" {
		// The serving ladder's middle rung: the SMAT-style tree fitted on
		// the same corpus, packaged as a checksummed artifact. On the
		// in-memory path it uses the training split; on the store path it
		// streams features shard by shard (features are scalar vectors, so
		// the whole feature table fits even when the matrices would not).
		var (
			X       [][]float64
			y       []int
			formats []sparse.Format
		)
		if d := res.Dataset; d != nil {
			formats = d.Formats
			for _, i := range res.Train {
				r := d.Records[i]
				X = append(X, features.BaselineFromStats(r.Stats))
				y = append(y, d.ClassIndex(r.Label))
			}
		} else {
			X, y, formats, err = streamDtreeFeatures(*dataIn, *platform, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "train: dtree:", err)
				os.Exit(1)
			}
		}
		dt, err := dtree.FitBaseline(X, y, formats, dtree.DefaultConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "train: dtree:", err)
			os.Exit(1)
		}
		if err := dt.SaveFile(*dtreeOut); err != nil {
			fmt.Fprintln(os.Stderr, "train: dtree:", err)
			os.Exit(1)
		}
		fmt.Printf("decision-tree baseline saved to %s\n", *dtreeOut)
	}
}

// streamDtreeFeatures extracts the baseline feature table from a
// corpus store one shard at a time, over the same training shards the
// CNN saw (held-out shards are excluded so both models share a split).
func streamDtreeFeatures(storePath, platform string, seed int64) ([][]float64, []int, []sparse.Format, error) {
	p, err := machine.PlatformByName(platform)
	if err != nil {
		return nil, nil, nil, err
	}
	store, _, err := dataset.OpenValidatedStore(storePath, machine.NewLabeler(p, seed))
	if err != nil {
		return nil, nil, nil, err
	}
	trainShards, _ := core.SplitShards(store.NumShards(), 0.2, seed+7)
	var (
		X [][]float64
		y []int
	)
	for _, si := range trainShards {
		d, err := store.Shard(si)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, r := range d.Records {
			X = append(X, features.BaselineFromStats(r.Stats))
			y = append(y, d.ClassIndex(r.Label))
		}
	}
	return X, y, store.Formats(), nil
}
