// Command gendata generates and labels a training corpus and writes it
// to an integrity-checked dataset file — step 1 of the paper's Figure 3
// pipeline as a standalone tool, so label collection (the expensive
// step on real hardware) can be reused across training runs.
//
//	gendata -platform titanlike -count 2000 -out gpu.gob
//
// Label collection is the stage the paper spends weeks of machine time
// on, so gendata is built to survive anything short of a disk fire:
// with -journal every completed shard is persisted atomically, and a
// build killed at any instant (kill -9 included) continues with
// -resume, skipping finished shards and producing a byte-identical
// dataset. A matrix that panics or exceeds -matrix-timeout is
// quarantined (spec + error in <journal>/quarantine.jsonl) instead of
// aborting the build; systemic failure still aborts via the
// consecutive-failure breaker and the -max-quarantine-frac threshold.
//
//	gendata -count 5000 -journal build/ -out corpus.gob      # killed...
//	gendata -count 5000 -journal build/ -out corpus.gob -resume
//
// -metrics-addr serves live gendata_* build gauges (shards done,
// records labeled, quarantined, labels/sec) plus pprof while the build
// runs, and a one-line JSON build report is appended to
// <journal>/report.jsonl on completion.
//
// Bulk ingestion mode walks a directory tree of MatrixMarket files (a
// SuiteSparse mirror) into a sharded corpus store instead of
// generating synthetic matrices:
//
//	gendata -import-dir suitesparse/ -store corpus.store          # killed...
//	gendata -import-dir suitesparse/ -store corpus.store -resume  # byte-identical
//
// Every file goes through the resource-governed reader (-import-max-*
// caps); malformed, oversized or panicking files are quarantined in
// the store, never fatal. Progress is journaled at each shard, dupes
// are skipped via the store's fingerprint index, and a full disk
// aborts cleanly at a shard boundary for later -resume. With -store
// and no -import-dir, the generated synthetic corpus is written as a
// sharded store instead of a monolithic -out file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sparse"
)

func main() {
	platform := flag.String("platform", "xeonlike", "target platform: xeonlike, a8like, titanlike")
	count := flag.Int("count", 1000, "number of matrices")
	maxN := flag.Int("maxn", 2048, "matrix dimension bound")
	seed := flag.Int64("seed", 1, "random seed")
	noise := flag.Float64("noise", 0.03, "relative measurement noise sigma")
	out := flag.String("out", "dataset.gob", "output file")
	workers := flag.Int("workers", 0, "labeling worker goroutines (0 = GOMAXPROCS)")
	journal := flag.String("journal", "", "journal directory for crash-safe shard persistence (empty = in-memory build)")
	resume := flag.Bool("resume", false, "skip shards already journaled by a previous identical run (requires -journal)")
	shardSize := flag.Int("shard-size", 64, "matrices per journal shard")
	matrixTimeout := flag.Duration("matrix-timeout", 0, "per-matrix build+label deadline; exceeding it quarantines the matrix (0 = none)")
	maxQuarantine := flag.Float64("max-quarantine-frac", 0.25, "abort when quarantined/count exceeds this fraction (negative disables)")
	breakerThreshold := flag.Int("breaker-threshold", 16, "abort after this many consecutive per-matrix failures (negative disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve live build metrics and pprof on this address while the build runs (empty disables)")
	quiet := flag.Bool("quiet", false, "suppress per-shard progress lines")
	importDir := flag.String("import-dir", "", "ingest every .mtx under this directory into -store instead of generating matrices")
	storeDir := flag.String("store", "", "sharded corpus store directory to write (required with -import-dir)")
	importMaxRows := flag.Int("import-max-rows", 0, "per-file row cap for -import-dir (0 = service default)")
	importMaxCols := flag.Int("import-max-cols", 0, "per-file column cap for -import-dir (0 = service default)")
	importMaxNNZ := flag.Int("import-max-nnz", 0, "per-file nonzero cap for -import-dir (0 = service default)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	if *resume && *journal == "" && *importDir == "" {
		fmt.Fprintln(os.Stderr, "gendata: -resume requires -journal (or -import-dir)")
		os.Exit(2)
	}
	if *importDir != "" && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "gendata: -import-dir requires -store")
		os.Exit(2)
	}
	// Fire-drill hook, mirroring cmd/serve's SERVE_FAULT_INJECT: arm
	// label-panic / label-stall / shard-corrupt faults from the
	// environment so the kill→resume and quarantine drills exercise the
	// real binary.
	if spec := os.Getenv("GENDATA_FAULT_INJECT"); spec != "" {
		if err := faultinject.Arm(spec); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "gendata: fault injection armed: %s\n", spec)
	}

	p, err := machine.PlatformByName(*platform)
	if err != nil {
		fail(err)
	}
	lab := machine.NewLabeler(p, *seed)
	lab.NoiseSigma = *noise

	// Ctrl-C / SIGTERM stops the build at the next shard boundary;
	// journaled shards survive for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *importDir != "" {
		lim := sparse.DefaultLimits()
		if *importMaxRows > 0 {
			lim.MaxRows = *importMaxRows
		}
		if *importMaxCols > 0 {
			lim.MaxCols = *importMaxCols
		}
		if *importMaxNNZ > 0 {
			lim.MaxNNZ = *importMaxNNZ
		}
		opts := dataset.IngestOptions{
			ShardSize:         *shardSize,
			Limits:            lim,
			FileTimeout:       *matrixTimeout,
			MaxQuarantineFrac: *maxQuarantine,
			Resume:            *resume,
		}
		if !*quiet {
			opts.Logf = func(format string, args ...any) {
				fmt.Printf("gendata: "+format+"\n", args...)
			}
		}
		report, err := dataset.IngestDir(ctx, *importDir, *storeDir, lab, opts)
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintf(os.Stderr, "gendata: interrupted; store journal preserved in %s (rerun with -resume to continue)\n", *storeDir)
			os.Exit(130)
		case errors.Is(err, dataset.ErrNoSpace):
			fmt.Fprintf(os.Stderr, "gendata: %v\nstore left consistent at the last published shard; free space and rerun with -resume\n", err)
			os.Exit(1)
		case err != nil:
			fail(err)
		}
		fmt.Printf("ingested %d records into %s (%d shards, %d dupes skipped, %d files quarantined)\n",
			report.Records, *storeDir, report.Shards, report.Dupes, len(report.Quarantined))
		return
	}

	cfg := dataset.Config{
		Count: *count, Seed: *seed, MaxN: *maxN, Workers: *workers,
		ShardSize: *shardSize, JournalDir: *journal, Resume: *resume,
		MatrixTimeout: *matrixTimeout, MaxQuarantineFrac: *maxQuarantine,
		BreakerThreshold: *breakerThreshold,
	}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.RuntimeGauges(reg)
		cfg.Metrics = dataset.NewBuildMetrics(reg)
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fail(err)
		}
		srv := &http.Server{
			Handler:           obs.AdminHandler(obs.AdminConfig{Registry: reg, PProf: true}),
			ReadHeaderTimeout: 10 * time.Second,
		}
		fmt.Printf("gendata: metrics on http://%s/metrics\n", ln.Addr())
		go srv.Serve(ln)
		defer srv.Close()
	}
	if !*quiet {
		start := time.Now()
		cfg.OnShard = func(done, total int) {
			fmt.Printf("gendata: shard %d/%d done (%.1fs)\n", done, total, time.Since(start).Seconds())
		}
	}

	d, report, err := dataset.GenerateCtx(ctx, cfg, lab)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			if *journal != "" {
				fmt.Fprintf(os.Stderr, "gendata: interrupted; journal preserved in %s (rerun with -resume to continue)\n", *journal)
			} else {
				fmt.Fprintln(os.Stderr, "gendata: interrupted (no -journal, progress lost)")
			}
			os.Exit(130)
		case errors.Is(err, dataset.ErrBreakerTripped):
			fail(fmt.Errorf("labeling is failing consecutively, aborting (%v)", err))
		case errors.Is(err, dataset.ErrTooManyQuarantined):
			fail(fmt.Errorf("quarantine threshold exceeded, aborting (%v)", err))
		case errors.Is(err, dataset.ErrMismatch):
			fail(fmt.Errorf("%v; use a fresh -journal directory or matching flags", err))
		default:
			fail(err)
		}
	}

	if report != nil {
		fmt.Printf("gendata: %s\n", report)
	}
	counts := d.ClassCounts()
	fmt.Printf("labelled %d matrices on %s\n", len(d.Records), p)
	for i, f := range d.Formats {
		fmt.Printf("  %-5s %6d\n", f, counts[i])
	}
	if report != nil && report.Quarantined > 0 {
		where := "in-memory only (use -journal to persist quarantine reports)"
		if *journal != "" {
			where = fmt.Sprintf("see %s/quarantine.jsonl", *journal)
		}
		fmt.Printf("quarantined %d matrices; %s\n", report.Quarantined, where)
	}
	if *storeDir != "" {
		s, err := dataset.WriteStore(*storeDir, d, *shardSize)
		if err != nil {
			fail(err)
		}
		fmt.Printf("dataset stored to %s (%d shards, %d dupes skipped)\n", *storeDir, s.NumShards(), s.Dupes())
		return
	}
	if err := d.Save(*out); err != nil {
		fail(err)
	}
	fmt.Printf("dataset saved to %s\n", *out)
}
