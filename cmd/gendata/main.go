// Command gendata generates and labels a training corpus and writes it
// to a gob file — step 1 of the paper's Figure 3 pipeline as a
// standalone tool, so label collection (the expensive step on real
// hardware) can be reused across training runs.
//
//	gendata -platform titanlike -count 2000 -out gpu.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/machine"
)

func main() {
	platform := flag.String("platform", "xeonlike", "target platform: xeonlike, a8like, titanlike")
	count := flag.Int("count", 1000, "number of matrices")
	maxN := flag.Int("maxn", 2048, "matrix dimension bound")
	seed := flag.Int64("seed", 1, "random seed")
	noise := flag.Float64("noise", 0.03, "relative measurement noise sigma")
	out := flag.String("out", "dataset.gob", "output file")
	flag.Parse()

	p, err := machine.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	lab := machine.NewLabeler(p, *seed)
	lab.NoiseSigma = *noise
	d := dataset.Generate(dataset.Config{Count: *count, Seed: *seed, MaxN: *maxN}, lab)
	counts := d.ClassCounts()
	fmt.Printf("labelled %d matrices on %s\n", len(d.Records), p)
	for i, f := range d.Formats {
		fmt.Printf("  %-5s %6d\n", f, counts[i])
	}
	if err := d.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	fmt.Printf("dataset saved to %s\n", *out)
}
