// Command predict chooses the best SpMV storage format for a
// MatrixMarket file with a trained model — the artifact's
// `spmv_model.py predict data/example.mtx` mode.
//
// With -fallback the command never fails on a bad model or matrix: it
// degrades to CSR (the paper's baseline format) and reports why, which
// is the behaviour a production service wants on a corrupt deploy
// artifact.
//
//	predict -model model.gob matrix.mtx
//	predict -model model.gob -fallback matrix.mtx
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/selector"
	"repro/internal/sparse"
)

func main() {
	modelPath := flag.String("model", "model.gob", "trained model file")
	fallback := flag.Bool("fallback", false, "degrade to CSR instead of failing on load/predict errors")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: predict -model model.gob [-fallback] matrix.mtx")
		os.Exit(2)
	}
	s, err := selector.LoadFile(*modelPath)
	if err != nil && !*fallback {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	if *fallback {
		p := predictFallback(s, err, flag.Arg(0))
		fmt.Println(p.Format)
		if p.FellBack {
			fmt.Printf("  (fallback: %v)\n", p.Reason)
		}
		printProbs(p.Probs)
		return
	}
	format, probs, err := core.Predict(s, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	fmt.Println(format)
	printProbs(probs)
}

// predictFallback resolves a prediction that always succeeds: model
// load failures and unreadable matrices degrade to the CSR baseline
// with the cause recorded.
func predictFallback(s *selector.Selector, loadErr error, mtxPath string) selector.Prediction {
	if loadErr != nil {
		return selector.FallbackPrediction(loadErr)
	}
	m, err := sparse.ReadMatrixMarketFile(mtxPath)
	if err != nil {
		return selector.FallbackPrediction(err)
	}
	return s.PredictWithFallback(m)
}

func printProbs(probs map[sparse.Format]float64) {
	type fp struct {
		f sparse.Format
		p float64
	}
	var list []fp
	for f, p := range probs {
		list = append(list, fp{f, p})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].p > list[j].p })
	for _, e := range list {
		fmt.Printf("  %-5s %.3f\n", e.f, e.p)
	}
}
