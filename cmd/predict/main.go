// Command predict chooses the best SpMV storage format for a
// MatrixMarket file with a trained model — the artifact's
// `spmv_model.py predict data/example.mtx` mode.
//
// With -fallback the command never fails outright on a bad model or
// matrix: it degrades to CSR (the paper's baseline format) and reports
// why. A fallback forced by a model that failed to load still exits
// with status 1 — stdout carries the usable degraded answer while the
// exit code keeps a missing or corrupt deploy artifact from
// masquerading as success in scripts.
//
// With -server the prediction is made by a running `serve` instance
// instead of loading a model locally — the thin-client mode for hosts
// that share one warm model server.
//
//	predict -model model.gob matrix.mtx
//	predict -model model.gob -fallback matrix.mtx
//	predict -server http://127.0.0.1:8080 matrix.mtx
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/selector"
	"repro/internal/sparse"
)

func main() {
	modelPath := flag.String("model", "model.gob", "trained model file")
	fallback := flag.Bool("fallback", false, "degrade to CSR instead of failing on load/predict errors")
	server := flag.String("server", "", "base URL of a running serve instance (client mode; -model is ignored)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: predict [-model model.gob] [-fallback] [-server URL] matrix.mtx")
		os.Exit(2)
	}
	if *server != "" {
		os.Exit(predictRemote(*server, flag.Arg(0)))
	}
	s, err := selector.LoadFile(*modelPath)
	if err != nil && !*fallback {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	if *fallback {
		p := predictFallback(s, err, flag.Arg(0))
		fmt.Println(p.Format)
		if p.FellBack {
			fmt.Printf("  (fallback: %v)\n", p.Reason)
		}
		printProbs(p.Probs)
		if err != nil {
			// The degraded answer above is still usable, but a model
			// that failed to load is an operational failure; surface it
			// in the exit code instead of hiding it behind the baseline.
			os.Exit(1)
		}
		return
	}
	format, probs, err := core.Predict(s, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	fmt.Println(format)
	printProbs(probs)
}

// predictFallback resolves a prediction that always succeeds: model
// load failures and unreadable matrices degrade to the CSR baseline
// with the cause recorded.
func predictFallback(s *selector.Selector, loadErr error, mtxPath string) selector.Prediction {
	if loadErr != nil {
		return selector.FallbackPrediction(loadErr)
	}
	m, err := sparse.ReadMatrixMarketFile(mtxPath)
	if err != nil {
		return selector.FallbackPrediction(err)
	}
	return s.PredictWithFallback(m)
}

// serveResponse mirrors the serve package's /v1/predict answer.
type serveResponse struct {
	Format          string             `json:"format"`
	Probs           map[string]float64 `json:"probs"`
	FellBack        bool               `json:"fell_back"`
	Reason          string             `json:"reason"`
	Cached          bool               `json:"cached"`
	ModelGeneration uint64             `json:"model_generation"`
}

// predictRemote posts the Matrix Market file to a serve instance and
// prints the answer in the same shape as local mode. It returns the
// process exit code: 0 on a model-backed answer, 1 on transport or
// server errors or a server-side fallback.
func predictRemote(base, mtxPath string) int {
	body, err := os.ReadFile(mtxPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		return 1
	}
	url := strings.TrimRight(base, "/") + "/v1/predict"
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Post(url, "text/matrix-market", strings.NewReader(string(body)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		fmt.Fprintf(os.Stderr, "predict: server returned %s: %s\n", resp.Status, e.Error)
		return 1
	}
	var r serveResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		fmt.Fprintln(os.Stderr, "predict: decoding server response:", err)
		return 1
	}
	fmt.Println(r.Format)
	if r.FellBack {
		fmt.Printf("  (fallback: %s)\n", r.Reason)
	}
	if r.Cached {
		fmt.Printf("  (cached, model generation %d)\n", r.ModelGeneration)
	}
	probs := make(map[sparse.Format]float64, len(r.Probs))
	for name, p := range r.Probs {
		f, err := sparse.ParseFormat(name)
		if err != nil {
			continue
		}
		probs[f] = p
	}
	printProbs(probs)
	if r.FellBack {
		return 1
	}
	return 0
}

func printProbs(probs map[sparse.Format]float64) {
	type fp struct {
		f sparse.Format
		p float64
	}
	var list []fp
	for f, p := range probs {
		list = append(list, fp{f, p})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].p > list[j].p })
	for _, e := range list {
		fmt.Printf("  %-5s %.3f\n", e.f, e.p)
	}
}
