// Command predict chooses the best SpMV storage format for a
// MatrixMarket file with a trained model — the artifact's
// `spmv_model.py predict data/example.mtx` mode.
//
//	predict -model model.gob matrix.mtx
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/selector"
	"repro/internal/sparse"
)

func main() {
	modelPath := flag.String("model", "model.gob", "trained model file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: predict -model model.gob matrix.mtx")
		os.Exit(2)
	}
	s, err := selector.LoadFile(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	format, probs, err := core.Predict(s, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	fmt.Println(format)
	type fp struct {
		f sparse.Format
		p float64
	}
	var list []fp
	for f, p := range probs {
		list = append(list, fp{f, p})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].p > list[j].p })
	for _, e := range list {
		fmt.Printf("  %-5s %.3f\n", e.f, e.p)
	}
}
