// Command spmvbench runs SpMV on one matrix across all storage formats,
// reporting wall-clock timings of the parallel Go kernels alongside the
// platform-model estimates — the measurement harness behind the paper's
// label-collection step.
//
//	spmvbench matrix.mtx
//	spmvbench -gen banded -n 4096 -platform titanlike
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/machine"
	"repro/internal/sparse"
	"repro/internal/spmv"
	"repro/internal/synthgen"
)

func main() {
	gen := flag.String("gen", "", "generate instead of reading a file: banded, multidiag, uniform, random, powerlaw, blocked, hypersparse, kronecker")
	n := flag.Int("n", 2048, "generated matrix dimension")
	seed := flag.Int64("seed", 1, "generator seed")
	platform := flag.String("platform", "xeonlike", "platform for model estimates")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "SpMV worker goroutines")
	repeats := flag.Int("repeats", 11, "timing repetitions (MAD-trimmed mean is reported)")
	warmup := flag.Int("warmup", 2, "untimed warmup iterations per format")
	timeout := flag.Duration("timeout", 0, "per-format measurement deadline; a format exceeding it is reported as timed out instead of hanging the harness (0 = none)")
	autotune := flag.Duration("autotune", 0, "run the kernel autotuner with this sweep budget before measuring (0 = built-in dispatch defaults)")
	tableOut := flag.String("table-out", "", "write the autotuner dispatch table (or the built-in defaults' sweep) to this JSON file")
	tableIn := flag.String("table", "", "load a previously saved dispatch table instead of sweeping")
	flag.Parse()

	if *tableIn != "" {
		tab, err := spmv.LoadTableFile(*tableIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
		spmv.Install(tab)
	}
	if *autotune > 0 {
		tab := spmv.AutoTune(*autotune, *seed)
		fmt.Printf("autotuned %d dispatch cells in %s\n", len(tab.Entries), tab.SweptIn)
		if *tableOut != "" {
			if err := spmv.SaveTableFile(*tableOut, tab); err != nil {
				fmt.Fprintln(os.Stderr, "spmvbench:", err)
				os.Exit(1)
			}
			fmt.Printf("dispatch table written to %s\n", *tableOut)
		}
	}

	var c *sparse.COO
	var err error
	switch {
	case *gen != "":
		c, err = generate(*gen, *n, *seed)
	case flag.NArg() == 1:
		c, err = sparse.ReadMatrixMarketFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: spmvbench [-gen family -n N | matrix.mtx]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvbench:", err)
		os.Exit(1)
	}
	p, err := machine.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvbench:", err)
		os.Exit(1)
	}

	rows, cols := c.Dims()
	st := sparse.ComputeStats(c)
	fmt.Printf("matrix: %dx%d, %d nonzeros, %d diagonals, row nnz %d..%d (cv %.2f)\n",
		rows, cols, c.NNZ(), st.NumDiags, st.MinRowNNZ, st.MaxRowNNZ, st.RowNNZCV)
	fmt.Printf("%-6s %14s %14s %12s %10s\n", "format", "measured", "model("+p.Name+")", "GFLOP/s", "bytes")

	type row struct {
		f        sparse.Format
		measured float64
	}
	var rowsOut []row
	opts := machine.MeasureOpts{Workers: *workers, Repeats: *repeats, Warmup: *warmup, Timeout: *timeout}
	for _, f := range sparse.AllFormats() {
		m := sparse.MustConvert(c, f)
		// The same warmup + MAD-trimmed-mean estimator the corpus
		// labeler uses, so harness numbers and training labels agree.
		sec, err := machine.MeasureCtx(context.Background(), m, opts)
		model := p.EstimateSeconds(st, f)
		if errors.Is(err, machine.ErrMeasureTimeout) {
			fmt.Printf("%-6s %13s %13.3gs %12s %10d\n", f, "timeout", model, "-", m.Bytes())
			continue
		} else if err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
		rowsOut = append(rowsOut, row{f, sec})
		gflops := 2 * float64(c.NNZ()) / sec / 1e9
		fmt.Printf("%-6s %12.3gs %13.3gs %12.2f %10d\n", f, sec, model, gflops, m.Bytes())
	}
	if len(rowsOut) == 0 {
		fmt.Fprintln(os.Stderr, "spmvbench: every format timed out; raise -timeout")
		os.Exit(1)
	}
	sort.Slice(rowsOut, func(i, j int) bool { return rowsOut[i].measured < rowsOut[j].measured })
	fmt.Printf("fastest measured: %s\n", rowsOut[0].f)
}

func generate(family string, n int, seed int64) (*sparse.COO, error) {
	switch family {
	case "banded":
		return synthgen.Banded(n, 4, 0.9, seed), nil
	case "multidiag":
		return synthgen.MultiDiag(n, 7, 0.9, seed), nil
	case "uniform":
		return synthgen.Uniform(n, 12, 0, seed), nil
	case "random":
		return synthgen.Random(n, n, n*12, seed), nil
	case "powerlaw":
		return synthgen.PowerLaw(n, 10, 1.4, seed), nil
	case "blocked":
		return synthgen.Blocked(n, n, 4, 1.0, seed), nil
	case "hypersparse":
		return synthgen.Hypersparse(n*40, n, n, seed), nil
	case "kronecker":
		return synthgen.Kronecker(n, n*8, 0.57, 0.19, 0.19, seed), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
