package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/represent"
	"repro/internal/selector"
	"repro/internal/sparse"
	"repro/internal/synthgen"
)

// saveModel writes a tiny CPU-format selector artifact.
func saveModel(t *testing.T, path string) {
	t.Helper()
	cfg := selector.DefaultConfig(represent.KindHistogram, sparse.CPUFormats())
	cfg.Represent.Size = 16
	cfg.Represent.Bins = 8
	s, err := selector.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

// saveCorpus writes a small corpus labeled for the named platform.
func saveCorpus(t *testing.T, path, platform string) {
	t.Helper()
	p, err := machine.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	lab := machine.NewLabeler(p, 3)
	d := &dataset.Dataset{Platform: p.Name, Formats: lab.Formats}
	for i := 0; i < 4; i++ {
		spec := synthgen.Spec{Family: synthgen.FamilyBanded, N: 24 + i, Band: 2, Fill: 0.9, Seed: int64(i + 1)}
		m := synthgen.Build(spec)
		st := sparse.ComputeStats(m)
		label, times := lab.Label(st, uint64(i))
		d.Records = append(d.Records, dataset.Record{
			ID: uint64(i), Spec: spec, Stats: st, Label: label, Times: times,
		})
	}
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
}

// TestDatasetGatingMismatchExitsNonZero is the regression test for the
// -dataset gating contract: a corpus labeled for a different platform
// must exit 1 with the typed mismatch spelled out — never silently
// fall back to collecting a fresh corpus on the target.
func TestDatasetGatingMismatchExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	corpus := filepath.Join(dir, "corpus.gob")
	saveModel(t, model)
	saveCorpus(t, corpus, "a8like") // CPU format set, wrong platform name

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-model", model,
		"-target", "xeonlike",
		"-dataset", corpus,
		"-out", filepath.Join(dir, "out.gob"),
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d for mismatched corpus, want 1 (stderr: %s)", code, stderr.String())
	}
	if msg := stderr.String(); !strings.Contains(msg, "was not labeled for xeonlike") {
		t.Fatalf("stderr does not name the mismatch: %q", msg)
	}
	// The gate must have stopped the run before any retraining output.
	if out := stdout.String(); strings.Contains(out, "retraining") {
		t.Fatalf("mismatched corpus still reached retraining:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "out.gob")); !os.IsNotExist(err) {
		t.Fatal("mismatched corpus still produced an output model")
	}
}

// TestDatasetGatingCorruptExitsNonZero: a corrupt corpus artifact must
// exit 1 with the corruption typed, not fall back.
func TestDatasetGatingCorruptExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	corpus := filepath.Join(dir, "corpus.gob")
	saveModel(t, model)
	saveCorpus(t, corpus, "xeonlike")
	data, err := os.ReadFile(corpus)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(corpus, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-model", model,
		"-target", "xeonlike",
		"-dataset", corpus,
		"-out", filepath.Join(dir, "out.gob"),
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d for corrupt corpus, want 1 (stderr: %s)", code, stderr.String())
	}
	if msg := stderr.String(); !strings.Contains(msg, "corrupt") {
		t.Fatalf("stderr does not name the corruption: %q", msg)
	}
}

// TestValidDatasetMigrates is the happy-path control: a corpus labeled
// for the target platform passes the gate and produces a model.
func TestValidDatasetMigrates(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	corpus := filepath.Join(dir, "corpus.gob")
	out := filepath.Join(dir, "out.gob")
	saveModel(t, model)
	saveCorpus(t, corpus, "xeonlike")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-model", model,
		"-target", "xeonlike",
		"-dataset", corpus,
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if _, err := selector.LoadFile(out); err != nil {
		t.Fatalf("migrated model does not load: %v", err)
	}
}
