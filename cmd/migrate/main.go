// Command migrate ports a trained selector to a new platform with
// transfer learning (Section 6): it loads a source model, collects a
// (small) label budget on the target platform, retrains with the chosen
// method, and saves the migrated model.
//
//	migrate -model xeon.gob -target a8like -method top -budget 200 -out a8.gob
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/selector"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exits surfaced: 0 success, 1 typed failure,
// 2 usage, 130 interrupted. Every gating failure (corrupt artifact,
// platform/format mismatch, semantic invalidity) must exit non-zero
// with the typed error spelled out — never fall back to collecting a
// fresh corpus, which would silently train on the wrong distribution.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("migrate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "model.gob", "source model file")
	target := fs.String("target", "a8like", "target platform: xeonlike, a8like, titanlike")
	method := fs.String("method", "top", "migration method: scratch, continuous, top")
	budget := fs.Int("budget", 200, "target-platform label budget (matrices)")
	dataIn := fs.String("dataset", "", "retrain on this pre-labeled target-platform corpus (a gendata artifact) instead of collecting -budget labels")
	maxN := fs.Int("maxn", 2048, "matrix dimension bound for the retraining corpus")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "migrated.gob", "output model file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "migrate:", err)
		return 1
	}
	src, err := selector.LoadFile(*modelPath)
	if err != nil {
		switch {
		case errors.Is(err, nn.ErrChecksum), errors.Is(err, nn.ErrTruncated):
			return fail(fmt.Errorf("%s is corrupt or truncated (%v); re-export the source model", *modelPath, err))
		case errors.Is(err, nn.ErrBadMagic), errors.Is(err, nn.ErrWrongKind):
			return fail(fmt.Errorf("%s is not a selector model file (%v)", *modelPath, err))
		case errors.Is(err, nn.ErrVersion):
			return fail(fmt.Errorf("%s was written by an incompatible version (%v)", *modelPath, err))
		default:
			return fail(err)
		}
	}
	var m selector.TransferMethod
	switch *method {
	case "scratch":
		m = selector.FromScratch
	case "continuous":
		m = selector.ContinuousEvolvement
	case "top":
		m = selector.TopEvolvement
	default:
		return fail(fmt.Errorf("unknown method %q", *method))
	}
	p, err := machine.PlatformByName(*target)
	if err != nil {
		return fail(err)
	}
	if got, want := len(p.FormatSet()), len(src.Cfg.Formats); got != want {
		return fail(fmt.Errorf("source model selects among %d formats but %s selects among %d; migrate within a platform kind",
			want, *target, got))
	}

	lab := machine.NewLabeler(p, *seed)
	var d *dataset.Dataset
	if *dataIn != "" {
		fmt.Fprintf(stdout, "loading target-platform corpus from %s\n", *dataIn)
		d, err = dataset.LoadValidatedAny(*dataIn, lab)
		switch {
		case errors.Is(err, dataset.ErrCorrupt):
			return fail(fmt.Errorf("%s is corrupt or truncated (%v); regenerate it with gendata", *dataIn, err))
		case errors.Is(err, dataset.ErrMismatch):
			return fail(fmt.Errorf("%s was not labeled for %s (%v); migration needs target-platform labels — regenerate with gendata -platform %s", *dataIn, *target, err, *target))
		case errors.Is(err, dataset.ErrInvalid):
			return fail(fmt.Errorf("%s decodes but fails semantic validation (%v); regenerate it with gendata", *dataIn, err))
		case err != nil:
			return fail(err)
		}
	} else {
		fmt.Fprintf(stdout, "collecting %d labels on %s\n", *budget, p)
		d = dataset.Generate(dataset.Config{Count: *budget, Seed: *seed, MaxN: *maxN}, lab)
	}

	migrated, err := selector.Transfer(src, m)
	if err != nil {
		return fail(err)
	}
	if m != selector.FromScratch {
		migrated.Cfg.LearningRate *= 0.4 // standard fine-tuning step size
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "retraining with %s (%d epochs)\n", m, migrated.Cfg.Epochs)
	if _, err := migrated.TrainCtx(ctx, d, nil); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(stderr, "migrate: interrupted")
			return 130
		}
		return fail(err)
	}
	metrics, err := migrated.Evaluate(d, nil)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "accuracy on the retraining corpus: %.1f%%\n", metrics.Accuracy()*100)
	if err := migrated.SaveFile(*out); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "migrated model saved to %s\n", *out)
	return 0
}
