// Command migrate ports a trained selector to a new platform with
// transfer learning (Section 6): it loads a source model, collects a
// (small) label budget on the target platform, retrains with the chosen
// method, and saves the migrated model.
//
//	migrate -model xeon.gob -target a8like -method top -budget 200 -out a8.gob
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/selector"
)

func main() {
	modelPath := flag.String("model", "model.gob", "source model file")
	target := flag.String("target", "a8like", "target platform: xeonlike, a8like, titanlike")
	method := flag.String("method", "top", "migration method: scratch, continuous, top")
	budget := flag.Int("budget", 200, "target-platform label budget (matrices)")
	dataIn := flag.String("dataset", "", "retrain on this pre-labeled target-platform corpus (a gendata artifact) instead of collecting -budget labels")
	maxN := flag.Int("maxn", 2048, "matrix dimension bound for the retraining corpus")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "migrated.gob", "output model file")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "migrate:", err)
		os.Exit(1)
	}
	src, err := selector.LoadFile(*modelPath)
	if err != nil {
		switch {
		case errors.Is(err, nn.ErrChecksum), errors.Is(err, nn.ErrTruncated):
			fail(fmt.Errorf("%s is corrupt or truncated (%v); re-export the source model", *modelPath, err))
		case errors.Is(err, nn.ErrBadMagic), errors.Is(err, nn.ErrWrongKind):
			fail(fmt.Errorf("%s is not a selector model file (%v)", *modelPath, err))
		case errors.Is(err, nn.ErrVersion):
			fail(fmt.Errorf("%s was written by an incompatible version (%v)", *modelPath, err))
		default:
			fail(err)
		}
	}
	var m selector.TransferMethod
	switch *method {
	case "scratch":
		m = selector.FromScratch
	case "continuous":
		m = selector.ContinuousEvolvement
	case "top":
		m = selector.TopEvolvement
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}
	p, err := machine.PlatformByName(*target)
	if err != nil {
		fail(err)
	}
	if got, want := len(p.FormatSet()), len(src.Cfg.Formats); got != want {
		fail(fmt.Errorf("source model selects among %d formats but %s selects among %d; migrate within a platform kind",
			want, *target, got))
	}

	lab := machine.NewLabeler(p, *seed)
	var d *dataset.Dataset
	if *dataIn != "" {
		fmt.Printf("loading target-platform corpus from %s\n", *dataIn)
		d, err = dataset.LoadValidated(*dataIn, lab)
		switch {
		case errors.Is(err, dataset.ErrCorrupt):
			fail(fmt.Errorf("%s is corrupt or truncated (%v); regenerate it with gendata", *dataIn, err))
		case errors.Is(err, dataset.ErrMismatch):
			fail(fmt.Errorf("%s was not labeled for %s (%v); migration needs target-platform labels — regenerate with gendata -platform %s", *dataIn, *target, err, *target))
		case errors.Is(err, dataset.ErrInvalid):
			fail(fmt.Errorf("%s decodes but fails semantic validation (%v); regenerate it with gendata", *dataIn, err))
		case err != nil:
			fail(err)
		}
	} else {
		fmt.Printf("collecting %d labels on %s\n", *budget, p)
		d = dataset.Generate(dataset.Config{Count: *budget, Seed: *seed, MaxN: *maxN}, lab)
	}

	migrated, err := selector.Transfer(src, m)
	if err != nil {
		fail(err)
	}
	if m != selector.FromScratch {
		migrated.Cfg.LearningRate *= 0.4 // standard fine-tuning step size
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("retraining with %s (%d epochs)\n", m, migrated.Cfg.Epochs)
	if _, err := migrated.TrainCtx(ctx, d, nil); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "migrate: interrupted")
			os.Exit(130)
		}
		fail(err)
	}
	metrics, err := migrated.Evaluate(d, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("accuracy on the retraining corpus: %.1f%%\n", metrics.Accuracy()*100)
	if err := migrated.SaveFile(*out); err != nil {
		fail(err)
	}
	fmt.Printf("migrated model saved to %s\n", *out)
}
