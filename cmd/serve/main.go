// Command serve runs the online format-selection service: a
// long-running HTTP server that answers POST /v1/predict with the
// trained CNN's format choice for a posted sparse matrix.
//
//	serve -model model.gob -addr 127.0.0.1:8080
//
// Endpoints: POST /v1/predict (JSON COO triplets or a raw Matrix
// Market body), GET /healthz, GET /readyz, GET /metrics (Prometheus
// text format).
//
// Observability: every predict response carries an X-Trace-Id header;
// ?trace=1 returns the per-stage span breakdown in the body.
// -admin-addr starts a second listener with the operational surfaces —
// GET /metrics, GET /debug/traces (recent request traces) and the
// net/http/pprof profiles under GET /debug/pprof/ — kept off the
// client-facing port.
//
// Operations: SIGHUP hot-reloads the model file, as does overwriting
// it in place when -watch is enabled (the default; the new artifact is
// validated before the swap, so a corrupt file is rejected and the old
// model keeps serving). SIGINT/SIGTERM drain gracefully: readiness
// flips to 503, in-flight requests finish within -drain-timeout, and a
// final metrics snapshot is logged.
//
// Robustness: ingestion is resource-governed (-max-rows, -max-cols,
// -max-nnz, -max-body bound what one request may cost; violations
// answer 413), overload is shed from a bounded queue (-queue) with
// 429 + Retry-After, and a circuit breaker (-breaker-threshold,
// -breaker-cooldown) degrades a sick CNN onto the decision-tree rung
// (-dtree, or a built-in heuristic) and recovers it via half-open
// probes. SERVE_FAULT_INJECT arms chaos points for drills, e.g.
// SERVE_FAULT_INJECT="serve.predict.panic:3".
//
// Continual learning: -feedback-dir captures every answered prediction
// into a crash-safe JSONL feedback log (size/age-rotated segments that
// cmd/shepherd folds into an online corpus). Predict requests may
// report a measured SpMV time via a "spmv_seconds" JSON field; absent
// that, -feedback-estimates fills in a cache-simulated estimate. The
// admin listener additionally exposes the shadow-deployment surface
// (POST /shadow/load, POST /shadow/clear, GET /shadow/scorecard): a
// loaded shadow model mirrors every -shadow-sample'th prediction for
// scoring without ever touching a response.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	adminAddr := flag.String("admin-addr", "", "admin listen address for /metrics, /debug/pprof/ and /debug/traces (empty disables)")
	model := flag.String("model", "model.gob", "trained model file (selector envelope)")
	batch := flag.Int("batch", 16, "max prediction jobs per micro-batch")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long a batch waits to fill")
	workers := flag.Int("workers", 0, "prediction worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1024, "prediction cache entries (0 disables)")
	watch := flag.Duration("watch", 2*time.Second, "model file watch interval (0 disables hot-reload watching)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	maxRows := flag.Int("max-rows", 4<<20, "largest accepted row count per matrix (413 beyond)")
	maxCols := flag.Int("max-cols", 4<<20, "largest accepted column count per matrix (413 beyond)")
	maxNNZ := flag.Int("max-nnz", 16<<20, "largest accepted nonzero count per matrix (413 beyond)")
	maxBody := flag.Int64("max-body", 32<<20, "largest accepted request body in bytes (413 beyond)")
	queue := flag.Int("queue", 0, "prediction queue depth before shedding 429s (0 = 4*batch*workers)")
	sloTarget := flag.Duration("slo-target-p99", 0, "p99 latency SLO enabling adaptive admission, autosized batching, brownout and drain-rate Retry-After (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive CNN failures before degrading to the decision tree")
	breakerCooldown := flag.Duration("breaker-cooldown", 15*time.Second, "wait before a half-open probe retries the CNN")
	predictTimeout := flag.Duration("predict-timeout", 2*time.Second, "per-inference CNN deadline before degrading")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "end-to-end deadline budget per request")
	dtreePath := flag.String("dtree", "", "trained decision-tree artifact for the degraded rung (empty = built-in heuristic)")
	selfURL := flag.String("self", "", "this replica's advertised base URL in a cluster (empty = derive from the listener)")
	peerFillTimeout := flag.Duration("peer-fill-timeout", 150*time.Millisecond, "peer cache-fill deadline before failing open to local compute")
	feedbackDir := flag.String("feedback-dir", "", "directory for the crash-safe feedback log (empty disables capture)")
	feedbackEstimates := flag.Bool("feedback-estimates", true, "fill missing client SpMV timings with cache-simulated estimates")
	feedbackSegBytes := flag.Int64("feedback-segment-bytes", 1<<20, "feedback log segment size before rotation")
	feedbackSegAge := flag.Duration("feedback-segment-age", 30*time.Second, "feedback log segment age before rotation")
	shadowSample := flag.Int("shadow-sample", 8, "mirror every Nth prediction through a loaded shadow model (0 disables)")
	f32 := flag.Bool("f32-inference", true, "serve predictions from the compiled float32 engine (false = reference float64 path)")
	spmvTable := flag.String("spmv-table", "", "autotuned SpMV dispatch table JSON (spmvbench -autotune output); empty keeps built-in defaults")
	flag.Parse()

	if *spmvTable != "" {
		tab, err := spmv.LoadTableFile(*spmvTable)
		if err != nil {
			// The table is a performance cache, never a correctness
			// dependency: a stale or unreadable file logs and falls back to
			// the built-in dispatch defaults.
			fmt.Fprintln(os.Stderr, "serve: spmv table ignored:", err)
		} else {
			spmv.Install(tab)
			fmt.Fprintf(os.Stderr, "serve: spmv dispatch table loaded from %s (%d entries)\n", *spmvTable, len(tab.Entries))
		}
	}

	if spec := os.Getenv("SERVE_FAULT_INJECT"); spec != "" {
		if err := faultinject.Arm(spec); err != nil {
			fmt.Fprintln(os.Stderr, "serve: SERVE_FAULT_INJECT:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "serve: fault injection armed: %s\n", spec)
	}

	limits := sparse.DefaultLimits()
	limits.MaxRows, limits.MaxCols, limits.MaxNNZ = *maxRows, *maxCols, *maxNNZ

	s, err := serve.New(serve.Config{
		ModelPath:               *model,
		BatchMax:                *batch,
		BatchWindow:             *batchWindow,
		Workers:                 *workers,
		QueueDepth:              *queue,
		CacheSize:               *cacheSize,
		MaxBodyBytes:            *maxBody,
		Limits:                  limits,
		RequestTimeout:          *requestTimeout,
		SLOTargetP99:            *sloTarget,
		PredictTimeout:          *predictTimeout,
		BreakerThreshold:        *breakerThreshold,
		BreakerCooldown:         *breakerCooldown,
		DTreePath:               *dtreePath,
		SelfURL:                 *selfURL,
		PeerFillTimeout:         *peerFillTimeout,
		FeedbackDir:             *feedbackDir,
		FeedbackEstimates:       *feedbackEstimates,
		FeedbackMaxSegmentBytes: *feedbackSegBytes,
		FeedbackMaxSegmentAge:   *feedbackSegAge,
		ShadowSampleN:           *shadowSample,
		DisableFloat32:          !*f32,
		Log:                     os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *watch > 0 {
		go s.WatchModel(ctx, *watch)
	}

	// The admin listener is a second, separately bound server: metrics
	// scrapes, pprof profiles and trace dumps never contend with (or
	// leak onto) the traffic port.
	var adminSrv *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: admin listener:", err)
			os.Exit(1)
		}
		adminSrv = &http.Server{Handler: s.AdminHandler(), ReadHeaderTimeout: 10 * time.Second}
		fmt.Printf("serve: admin listening on http://%s\n", aln.Addr())
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "serve: admin:", err)
			}
		}()
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			s.Reload() // rejection is logged; old model keeps serving
		}
	}()

	term := make(chan os.Signal, 1)
	signal.Notify(term, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-term
		fmt.Fprintln(os.Stderr, "serve: draining...")
		sctx, scancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer scancel()
		if adminSrv != nil {
			adminSrv.Shutdown(sctx)
		}
		done <- s.Shutdown(sctx)
	}()

	// The listening line goes to stdout so scripts can scrape the bound
	// address when -addr uses port 0.
	err = s.ListenAndServe(*addr, func(a net.Addr) {
		fmt.Printf("serve: listening on http://%s\n", a)
	})
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "serve: drained cleanly")
}
