// Command serve runs the online format-selection service: a
// long-running HTTP server that answers POST /v1/predict with the
// trained CNN's format choice for a posted sparse matrix.
//
//	serve -model model.gob -addr 127.0.0.1:8080
//
// Endpoints: POST /v1/predict (JSON COO triplets or a raw Matrix
// Market body), GET /healthz, GET /readyz, GET /metrics (Prometheus
// text format).
//
// Operations: SIGHUP hot-reloads the model file, as does overwriting
// it in place when -watch is enabled (the default; the new artifact is
// validated before the swap, so a corrupt file is rejected and the old
// model keeps serving). SIGINT/SIGTERM drain gracefully: readiness
// flips to 503, in-flight requests finish within -drain-timeout, and a
// final metrics snapshot is logged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	model := flag.String("model", "model.gob", "trained model file (selector envelope)")
	batch := flag.Int("batch", 16, "max prediction jobs per micro-batch")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long a batch waits to fill")
	workers := flag.Int("workers", 0, "prediction worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1024, "prediction cache entries (0 disables)")
	watch := flag.Duration("watch", 2*time.Second, "model file watch interval (0 disables hot-reload watching)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	flag.Parse()

	s, err := serve.New(serve.Config{
		ModelPath:   *model,
		BatchMax:    *batch,
		BatchWindow: *batchWindow,
		Workers:     *workers,
		CacheSize:   *cacheSize,
		Log:         os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *watch > 0 {
		go s.WatchModel(ctx, *watch)
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			s.Reload() // rejection is logged; old model keeps serving
		}
	}()

	term := make(chan os.Signal, 1)
	signal.Notify(term, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-term
		fmt.Fprintln(os.Stderr, "serve: draining...")
		sctx, scancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer scancel()
		done <- s.Shutdown(sctx)
	}()

	// The listening line goes to stdout so scripts can scrape the bound
	// address when -addr uses port 0.
	err = s.ListenAndServe(*addr, func(a net.Addr) {
		fmt.Printf("serve: listening on http://%s\n", a)
	})
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "serve: drained cleanly")
}
