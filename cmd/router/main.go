// Command router fronts a static set of serve replicas with
// fault-tolerant request routing: per-replica circuit breakers fed by
// active /readyz probes and passive response outcomes, bounded retries
// with jittered exponential backoff across the healthy set, optional
// tail-latency hedging, and consistent cache sharding — each request's
// sparsity fingerprint is rendezvous-hashed to a shard-owning replica,
// and the hint travels as the X-Shard-Owner header so replicas can
// peer-fill their caches.
//
//	router -addr 127.0.0.1:9090 \
//	  -replicas http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// Endpoints: POST /v1/predict (routed), GET /healthz, GET /readyz
// (503 until at least one replica is in rotation), GET /metrics
// (router_* series). -admin-addr adds a separate operational listener.
//
// Overload control: retries draw from a fleet-safe token budget
// (-retry-budget-ratio, -retry-budget-burst) so a shedding cluster is
// never amplified by its own router; replica Retry-After hints pace the
// relaunches that do happen; every attempt carries its remaining
// deadline as X-Request-Deadline so replicas can refuse work they
// cannot finish in time; and -replica-slo-target arms an adaptive
// per-replica in-flight limit that sheds at the router edge before
// deepening a slow replica's queue.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish within
// -drain-timeout, then the probe loop stops and a final metrics
// snapshot is logged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address (use :0 for an ephemeral port)")
	adminAddr := flag.String("admin-addr", "", "admin listen address for /metrics and /debug/pprof/ (empty disables)")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "replica health probe cadence")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe deadline")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures before a replica leaves rotation")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "wait before a half-open probe retests a down replica")
	halfOpenProbes := flag.Int("half-open-probes", 2, "consecutive successes a recovering replica needs to rejoin")
	retries := flag.Int("retries", 2, "max attempt relaunches per request (total attempts = retries+1)")
	backoff := flag.Duration("backoff", 25*time.Millisecond, "base retry backoff (doubles per retry, jittered)")
	retryBudgetRatio := flag.Float64("retry-budget-ratio", 0.1, "retry tokens deposited per successful attempt (caps steady-state retries at this fraction of successes; negative disables the budget)")
	retryBudgetBurst := flag.Int("retry-budget-burst", 10, "retry-budget token cap and starting balance")
	replicaSLO := flag.Duration("replica-slo-target", 0, "per-replica adaptive in-flight limit target latency (0 disables)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge to the next replica when the first attempt exceeds this (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "end-to-end deadline budget per routed request")
	maxBody := flag.Int64("max-body", 32<<20, "largest accepted request body in bytes (413 beyond)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	flag.Parse()

	if strings.TrimSpace(*replicas) == "" {
		fmt.Fprintln(os.Stderr, "router: -replicas is required")
		os.Exit(2)
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:         strings.Split(*replicas, ","),
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		HalfOpenProbes:   *halfOpenProbes,
		Retries:          *retries,
		Backoff:          *backoff,
		RetryBudgetRatio: *retryBudgetRatio,
		RetryBudgetBurst: *retryBudgetBurst,
		ReplicaSLOTarget: *replicaSLO,
		HedgeAfter:       *hedgeAfter,
		RequestTimeout:   *requestTimeout,
		MaxBodyBytes:     *maxBody,
		Log:              os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}

	var adminSrv *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "router: admin listener:", err)
			os.Exit(1)
		}
		adminSrv = &http.Server{
			Handler:           obs.AdminHandler(obs.AdminConfig{Registry: rt.Metrics(), PProf: true}),
			ReadHeaderTimeout: 10 * time.Second,
		}
		fmt.Printf("router: admin listening on http://%s\n", aln.Addr())
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "router: admin:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}
	// The listening line goes to stdout so scripts can scrape the bound
	// address when -addr uses port 0.
	fmt.Printf("router: listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}

	done := make(chan error, 1)
	term := make(chan os.Signal, 1)
	signal.Notify(term, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-term
		fmt.Fprintln(os.Stderr, "router: draining...")
		sctx, scancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer scancel()
		if adminSrv != nil {
			adminSrv.Shutdown(sctx)
		}
		err := srv.Shutdown(sctx)
		rt.Close()
		fmt.Fprintln(os.Stderr, "router: final metrics")
		rt.Metrics().WriteTo(os.Stderr)
		done <- err
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "router: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "router: drained cleanly")
}
