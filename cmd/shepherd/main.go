// Command shepherd closes the serve→retrain→redeploy loop. It watches
// a serving replica's feedback log, folds rotated segments into an
// online corpus, monitors the prediction stream for distribution
// drift, and — on sustained drift — retrains the selector head by
// top-evolvement transfer, scores the candidate as a shadow model on
// live traffic, and promotes it through the server's probe-validated
// hot reload. Every state transition is journaled, so a restarted
// shepherd resumes exactly where it stopped.
//
//	shepherd -work /var/lib/shepherd -model model.gob \
//	  -admin http://127.0.0.1:9090 -feedback-dir /var/log/feedback \
//	  -train-dataset corpus.gob
//
// The state machine: observing (collect + drift-monitor) → retraining
// (bounded top-evolvement transfer off the live model, checkpointed
// and resumable) → shadowing (candidate mirrors sampled traffic,
// metrics only) → promoting (atomic artifact swap; the server's
// watcher validates and hot-reloads it) → observing. A candidate that
// fails validation or the promotion gate is rejected and the live
// model keeps serving.
//
// -metrics-addr exposes the shepherd's own instrument set
// (feedback_drift_*, feedback_shepherd_*, feedback_collect_*) for
// scraping. SHEPHERD_FAULT_INJECT arms chaos points for drills, e.g.
// SHEPHERD_FAULT_INJECT="shepherd.candidate.corrupt" to exercise the
// rejection path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/feedback"
	"repro/internal/machine"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("shepherd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	work := fs.String("work", "shepherd-work", "work directory: journal, checkpoints, candidate, scorecard")
	model := fs.String("model", "model.gob", "live model artifact the serving tier watches (promotion swaps it)")
	admin := fs.String("admin", "", "serving tier admin base URL (shadow control + metrics), e.g. http://127.0.0.1:9090")
	feedbackDir := fs.String("feedback-dir", "", "the serving tier's feedback log directory (rotated segments are folded from here)")
	corpus := fs.String("corpus", "", "online corpus artifact (default <work>/corpus.gob)")
	trainDataset := fs.String("train-dataset", "", "training corpus the live model was fitted on — its profile is the drift baseline")
	platform := fs.String("platform", "xeonlike", "cost-model platform for labeling folded patterns (must match the training corpus)")
	seed := fs.Int64("seed", 1, "labeling seed")
	maxRecords := fs.Int("max-records", 4096, "online corpus cap (oldest evicted)")
	interval := fs.Duration("interval", 2*time.Second, "supervision period")
	window := fs.Int("window", 48, "drift evaluation window (entries)")
	mixThreshold := fs.Float64("mix-threshold", 0.35, "prediction-mix total-variation distance that votes drifted")
	featureThreshold := fs.Float64("feature-threshold", 1.5, "feature mean-shift (training-SD units) that votes drifted")
	rungThreshold := fs.Float64("rung-threshold", 0.25, "non-CNN rung fraction that votes drifted")
	tripAfter := fs.Int("trip-after", 3, "consecutive drifted windows before the detector fires")
	clearAfter := fs.Int("clear-after", 3, "consecutive clean windows before a fired detector clears")
	minRecords := fs.Int("min-records", 64, "online corpus records required before a retrain starts")
	retrainEpochs := fs.Int("retrain-epochs", 4, "top-evolvement retrain epoch budget")
	shadowMinSamples := fs.Int("shadow-min-samples", 32, "mirrored predictions required before the promotion gate is judged")
	promoteMinAgree := fs.Float64("promote-min-agree", 0, "minimum live/shadow agreement rate (0 = report only: drift means disagreement is expected)")
	promoteTimeout := fs.Duration("promote-timeout", 30*time.Second, "how long promotion waits for the server to hot-reload the swapped artifact")
	metricsAddr := fs.String("metrics-addr", "", "listen address for the shepherd's own /metrics (empty disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *admin == "" || *feedbackDir == "" || *trainDataset == "" {
		fmt.Fprintln(stderr, "shepherd: -admin, -feedback-dir and -train-dataset are required")
		return 2
	}
	if *corpus == "" {
		*corpus = filepath.Join(*work, "corpus.gob")
	}

	if spec := os.Getenv("SHEPHERD_FAULT_INJECT"); spec != "" {
		if err := faultinject.Arm(spec); err != nil {
			fmt.Fprintln(stderr, "shepherd: SHEPHERD_FAULT_INJECT:", err)
			return 2
		}
		fmt.Fprintf(stderr, "shepherd: fault injection armed: %s\n", spec)
	}

	p, err := machine.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(stderr, "shepherd:", err)
		return 2
	}
	lab := machine.NewLabeler(p, *seed)

	// The drift baseline: the corpus the live model was trained on,
	// validated against the same platform cost model used for folding,
	// so online labels and the reference profile are consistent.
	train, err := dataset.LoadValidatedAny(*trainDataset, lab)
	if err != nil {
		fmt.Fprintln(stderr, "shepherd: train dataset:", err)
		return 1
	}
	profile := feedback.NewProfile(train)
	fmt.Fprintf(stderr, "shepherd: drift baseline from %s (%d records, platform %s)\n",
		*trainDataset, profile.Count, profile.Platform)

	if err := os.MkdirAll(*work, 0o755); err != nil {
		fmt.Fprintln(stderr, "shepherd:", err)
		return 1
	}

	reg := obs.NewRegistry()
	collector, err := feedback.NewCollector(feedback.CollectorConfig{
		SegmentDir: *feedbackDir,
		CorpusPath: *corpus,
		Labeler:    lab,
		MaxRecords: *maxRecords,
		Log:        stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "shepherd:", err)
		return 1
	}
	detector := feedback.NewDetector(profile, feedback.DetectorConfig{
		Window:           *window,
		MixThreshold:     *mixThreshold,
		FeatureThreshold: *featureThreshold,
		RungThreshold:    *rungThreshold,
		TripAfter:        *tripAfter,
		ClearAfter:       *clearAfter,
		Registry:         reg,
	})
	shep, err := feedback.NewShepherd(feedback.ShepherdConfig{
		WorkDir:           *work,
		ModelPath:         *model,
		AdminURL:          *admin,
		Collector:         collector,
		Detector:          detector,
		Interval:          *interval,
		MinRetrainRecords: *minRecords,
		RetrainEpochs:     *retrainEpochs,
		ShadowMinSamples:  *shadowMinSamples,
		PromoteMinAgree:   *promoteMinAgree,
		PromoteTimeout:    *promoteTimeout,
		Registry:          reg,
		Log:               stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "shepherd:", err)
		return 1
	}

	// The shepherd's own metrics listener: drift state, corpus size and
	// the state machine's transition counters, scrapeable next to the
	// serving tier's.
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "shepherd: metrics listener:", err)
			return 1
		}
		metricsSrv = &http.Server{
			Handler:           obs.AdminHandler(obs.AdminConfig{Registry: reg}),
			ReadHeaderTimeout: 10 * time.Second,
		}
		// Stdout so scripts can scrape the bound address under :0.
		fmt.Fprintf(stdout, "shepherd: metrics listening on http://%s\n", ln.Addr())
		go func() {
			if err := metricsSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(stderr, "shepherd: metrics:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "shepherd: supervising %s via %s\n", *model, *admin)
	err = shep.Run(ctx)
	if metricsSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		metricsSrv.Shutdown(sctx)
		cancel()
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(stderr, "shepherd:", err)
		return 1
	}
	fmt.Fprintln(stderr, "shepherd: stopped")
	return 0
}
