// Command loadgen replays a heavy-tailed synthetic prediction workload
// against a serve replica or cluster router and reports availability
// and latency. It is the measurement half of the cluster chaos drill
// (scripts/clusterdrill): the drill kills a replica mid-run and reads
// the success rate off this tool's JSON report.
//
//	loadgen -url http://127.0.0.1:9090 -duration 10s -concurrency 8
//
// The workload is a fixed pool of synthgen mixture matrices with
// Zipf-distributed popularity — a few hot sparsity patterns dominate,
// like production traffic — which exercises the prediction cache, the
// router's shard hints and the replicas' peer fill, not just the
// forward pass.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sparse"
	"repro/internal/synthgen"
)

type report struct {
	URL           string         `json:"url"`
	Requests      int64          `json:"requests"`
	Success       int64          `json:"success"`
	TransportErrs int64          `json:"transport_errors"`
	Codes         map[string]int `json:"codes"`
	SuccessRate   float64        `json:"success_rate"`
	CachedAnswers int64          `json:"cached_answers"`
	P50Ms         float64        `json:"p50_ms"`
	P95Ms         float64        `json:"p95_ms"`
	P99Ms         float64        `json:"p99_ms"`
	ThroughputRPS float64        `json:"throughput_rps"`
	DurationSec   float64        `json:"duration_sec"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:9090", "target base URL (router or single replica)")
	duration := flag.Duration("duration", 10*time.Second, "how long to run (ignored when -n > 0)")
	n := flag.Int64("n", 0, "total request cap (0 = run for -duration)")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	matrices := flag.Int("matrices", 64, "distinct matrices in the workload pool")
	maxN := flag.Int("maxn", 384, "largest matrix dimension in the pool")
	zipfS := flag.Float64("zipf", 1.2, "Zipf skew of matrix popularity (larger = hotter head)")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	minSuccess := flag.Float64("min-success", 0, "exit nonzero when success_rate falls below this (0 disables)")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	flag.Parse()

	// Build the matrix pool once, bodies pre-marshalled: the generator
	// must never be the bottleneck during the measured window.
	specs := synthgen.SampleSpecs(*matrices, *seed, *maxN)
	bodies := make([][]byte, len(specs))
	for i, sp := range specs {
		bodies[i] = marshalBody(synthgen.Build(sp))
	}
	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(bodies)-1))
	// Pre-draw the popularity sequence so workers only do atomic reads.
	const seqLen = 1 << 14
	seq := make([]int, seqLen)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	var (
		next      atomic.Int64
		success   atomic.Int64
		transport atomic.Int64
		cached    atomic.Int64

		mu        sync.Mutex
		codes     = map[string]int{}
		latencies []float64
	)
	stopAt := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if *n > 0 && i >= *n {
					return
				}
				if *n == 0 && time.Now().After(stopAt) {
					return
				}
				body := bodies[seq[int(i)&(seqLen-1)]]
				reqStart := time.Now()
				res, err := client.Post(*url+"/v1/predict", "application/json", bytes.NewReader(body))
				lat := time.Since(reqStart)
				if err != nil {
					transport.Add(1)
					continue
				}
				var ans struct {
					Cached bool `json:"cached"`
				}
				json.NewDecoder(res.Body).Decode(&ans)
				res.Body.Close()
				if res.StatusCode == http.StatusOK {
					success.Add(1)
					if ans.Cached {
						cached.Add(1)
					}
				}
				mu.Lock()
				codes[fmt.Sprintf("%d", res.StatusCode)]++
				latencies = append(latencies, float64(lat.Milliseconds())+float64(lat.Microseconds()%1000)/1000)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var failures int64
	for code, c := range codes {
		if code != "200" {
			failures += int64(c)
		}
	}
	total := success.Load() + failures + transport.Load()
	rep := report{
		URL:           *url,
		Requests:      total,
		Success:       success.Load(),
		TransportErrs: transport.Load(),
		Codes:         codes,
		CachedAnswers: cached.Load(),
		DurationSec:   elapsed.Seconds(),
	}
	if total > 0 {
		rep.SuccessRate = float64(rep.Success) / float64(total)
		rep.ThroughputRPS = float64(total) / elapsed.Seconds()
	}
	sort.Float64s(latencies)
	rep.P50Ms = percentile(latencies, 0.50)
	rep.P95Ms = percentile(latencies, 0.95)
	rep.P99Ms = percentile(latencies, 0.99)

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	os.Stdout.Write(enc)

	if *minSuccess > 0 && rep.SuccessRate < *minSuccess {
		fmt.Fprintf(os.Stderr, "loadgen: success rate %.4f below floor %.4f\n", rep.SuccessRate, *minSuccess)
		os.Exit(1)
	}
}

// marshalBody renders a COO as the serve JSON predict body.
func marshalBody(m *sparse.COO) []byte {
	type req struct {
		Rows    int          `json:"rows"`
		Cols    int          `json:"cols"`
		Entries [][3]float64 `json:"entries"`
	}
	rows, cols := m.Dims()
	entries := m.Entries()
	r := req{Rows: rows, Cols: cols, Entries: make([][3]float64, len(entries))}
	for i, e := range entries {
		r.Entries[i] = [3]float64{float64(e.Row), float64(e.Col), e.Val}
	}
	b, _ := json.Marshal(r)
	return b
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
