// Command loadgen replays a heavy-tailed synthetic prediction workload
// against a serve replica or cluster router and reports availability
// and latency. It is the measurement half of the cluster chaos drill
// (scripts/clusterdrill): the drill kills a replica mid-run and reads
// the success rate off this tool's JSON report.
//
//	loadgen -url http://127.0.0.1:9090 -duration 10s -concurrency 8
//
// The workload is a fixed pool of synthgen mixture matrices with
// Zipf-distributed popularity — a few hot sparsity patterns dominate,
// like production traffic — which exercises the prediction cache, the
// router's shard hints and the replicas' peer fill, not just the
// forward pass.
//
// Two arrival processes are supported. The default, -arrival closed,
// runs -concurrency workers that each wait for their last answer
// before sending the next request. That is the wrong tool for overload
// measurement: a closed loop self-throttles — when the server slows
// down, the client's offered load drops in lockstep, latency looks
// flat, and the collapse you meant to measure never arrives
// (coordinated omission). -arrival poisson instead fires an open-loop
// Poisson process at -rate requests/second regardless of how the
// server is doing, which is how real overload behaves. Pair it with
// -slo to get a goodput column: only 200s answered within the SLO
// count, so a server that answers everything late scores zero.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sparse"
	"repro/internal/synthgen"
)

type report struct {
	URL           string         `json:"url"`
	Arrival       string         `json:"arrival"`
	Requests      int64          `json:"requests"`
	Success       int64          `json:"success"`
	InSLO         int64          `json:"in_slo"`
	TransportErrs int64          `json:"transport_errors"`
	Dropped       int64          `json:"dropped"`
	Codes         map[string]int `json:"codes"`
	SuccessRate   float64        `json:"success_rate"`
	CachedAnswers int64          `json:"cached_answers"`
	P50Ms         float64        `json:"p50_ms"`
	P95Ms         float64        `json:"p95_ms"`
	P99Ms         float64        `json:"p99_ms"`
	ThroughputRPS float64        `json:"throughput_rps"`
	OfferedRPS    float64        `json:"offered_rps"`
	GoodputRPS    float64        `json:"goodput_rps"`
	DurationSec   float64        `json:"duration_sec"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:9090", "target base URL (router or single replica)")
	duration := flag.Duration("duration", 10*time.Second, "how long to run (ignored when -n > 0)")
	n := flag.Int64("n", 0, "total request cap (0 = run for -duration)")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	matrices := flag.Int("matrices", 64, "distinct matrices in the workload pool")
	maxN := flag.Int("maxn", 384, "largest matrix dimension in the pool")
	zipfS := flag.Float64("zipf", 1.2, "Zipf skew of matrix popularity (larger = hotter head)")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	minSuccess := flag.Float64("min-success", 0, "exit nonzero when success_rate falls below this (0 disables)")
	arrival := flag.String("arrival", "closed", `arrival process: "closed" (workers wait for each answer; self-throttles under overload) or "poisson" (open-loop at -rate req/s; offered load holds regardless of server state)`)
	rate := flag.Float64("rate", 100, "offered request rate in req/s (poisson mode only)")
	slo := flag.Duration("slo", 0, "latency SLO defining goodput: only 200s within this count as good (0 = every 200 is good)")
	maxInflight := flag.Int("max-inflight", 4096, "open-loop in-flight cap; arrivals beyond it are dropped and counted, not queued (poisson mode only)")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	flag.Parse()
	if *arrival != "closed" && *arrival != "poisson" {
		fmt.Fprintf(os.Stderr, "loadgen: -arrival must be closed or poisson, got %q\n", *arrival)
		os.Exit(2)
	}
	if *arrival == "poisson" && *rate <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: poisson arrivals need -rate > 0")
		os.Exit(2)
	}

	// Build the matrix pool once, bodies pre-marshalled: the generator
	// must never be the bottleneck during the measured window.
	specs := synthgen.SampleSpecs(*matrices, *seed, *maxN)
	bodies := make([][]byte, len(specs))
	for i, sp := range specs {
		bodies[i] = marshalBody(synthgen.Build(sp))
	}
	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(bodies)-1))
	// Pre-draw the popularity sequence so workers only do atomic reads.
	const seqLen = 1 << 14
	seq := make([]int, seqLen)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	var (
		next      atomic.Int64
		success   atomic.Int64
		inSLO     atomic.Int64
		transport atomic.Int64
		cached    atomic.Int64
		dropped   atomic.Int64

		mu        sync.Mutex
		codes     = map[string]int{}
		latencies []float64
	)
	// doRequest fires one request and folds its outcome into the stats.
	doRequest := func(body []byte) {
		reqStart := time.Now()
		res, err := client.Post(*url+"/v1/predict", "application/json", bytes.NewReader(body))
		lat := time.Since(reqStart)
		if err != nil {
			transport.Add(1)
			return
		}
		var ans struct {
			Cached bool `json:"cached"`
		}
		json.NewDecoder(res.Body).Decode(&ans)
		res.Body.Close()
		if res.StatusCode == http.StatusOK {
			success.Add(1)
			if *slo <= 0 || lat <= *slo {
				inSLO.Add(1)
			}
			if ans.Cached {
				cached.Add(1)
			}
		}
		mu.Lock()
		codes[fmt.Sprintf("%d", res.StatusCode)]++
		latencies = append(latencies, float64(lat.Milliseconds())+float64(lat.Microseconds()%1000)/1000)
		mu.Unlock()
	}

	stopAt := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	switch *arrival {
	case "closed":
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if *n > 0 && i >= *n {
						return
					}
					if *n == 0 && time.Now().After(stopAt) {
						return
					}
					doRequest(bodies[seq[int(i)&(seqLen-1)]])
				}
			}()
		}
	case "poisson":
		// Open loop: exponential inter-arrival gaps at -rate req/s, one
		// goroutine per arrival. The in-flight cap protects the client
		// machine, not the server — arrivals beyond it are dropped (and
		// reported), never queued, or the loop would quietly close.
		sem := make(chan struct{}, *maxInflight)
		arrivalRNG := rand.New(rand.NewSource(*seed + 1))
		// Schedule against absolute arrival times, not per-gap sleeps:
		// sleep overshoot and dispatch overhead must not silently lower
		// the offered rate at high -rate.
		nextAt := time.Now()
		for i := int64(0); *n <= 0 || i < *n; i++ {
			nextAt = nextAt.Add(time.Duration(arrivalRNG.ExpFloat64() / *rate * float64(time.Second)))
			if gap := time.Until(nextAt); gap > 0 {
				time.Sleep(gap)
			}
			if *n <= 0 && time.Now().After(stopAt) {
				break
			}
			body := bodies[seq[int(i)&(seqLen-1)]]
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					doRequest(body)
				}()
			default:
				dropped.Add(1)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	var failures int64
	for code, c := range codes {
		if code != "200" {
			failures += int64(c)
		}
	}
	total := success.Load() + failures + transport.Load()
	rep := report{
		URL:           *url,
		Arrival:       *arrival,
		Requests:      total,
		Success:       success.Load(),
		InSLO:         inSLO.Load(),
		TransportErrs: transport.Load(),
		Dropped:       dropped.Load(),
		Codes:         codes,
		CachedAnswers: cached.Load(),
		DurationSec:   elapsed.Seconds(),
	}
	if total > 0 {
		rep.SuccessRate = float64(rep.Success) / float64(total)
		rep.ThroughputRPS = float64(total) / elapsed.Seconds()
		rep.OfferedRPS = float64(total+rep.Dropped) / elapsed.Seconds()
		rep.GoodputRPS = float64(rep.InSLO) / elapsed.Seconds()
	}
	sort.Float64s(latencies)
	rep.P50Ms = percentile(latencies, 0.50)
	rep.P95Ms = percentile(latencies, 0.95)
	rep.P99Ms = percentile(latencies, 0.99)

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	os.Stdout.Write(enc)

	if *minSuccess > 0 && rep.SuccessRate < *minSuccess {
		fmt.Fprintf(os.Stderr, "loadgen: success rate %.4f below floor %.4f\n", rep.SuccessRate, *minSuccess)
		os.Exit(1)
	}
}

// marshalBody renders a COO as the serve JSON predict body.
func marshalBody(m *sparse.COO) []byte {
	type req struct {
		Rows    int          `json:"rows"`
		Cols    int          `json:"cols"`
		Entries [][3]float64 `json:"entries"`
	}
	rows, cols := m.Dims()
	entries := m.Entries()
	r := req{Rows: rows, Cols: cols, Entries: make([][3]float64, len(entries))}
	for i, e := range entries {
		r.Entries[i] = [3]float64{float64(e.Row), float64(e.Col), e.Val}
	}
	b, _ := json.Marshal(r)
	return b
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
