// Package bench holds the top-level benchmark harness: one benchmark
// per paper table/figure (driving the experiments package at a reduced
// scale), SpMV kernel benchmarks per storage format, and ablation
// benchmarks for the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// The per-table benchmarks exist to regenerate the paper's rows from a
// single command; EXPERIMENTS.md records full-scale results.
package bench

import (
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/nn"
	"repro/internal/represent"
	"repro/internal/selector"
	"repro/internal/sparse"
	"repro/internal/spmv"
	"repro/internal/synthgen"
	"repro/internal/tensor"
)

// benchOptions is an extra-small experiment scale so each benchmark
// iteration completes in seconds.
func benchOptions() experiments.Options {
	o := experiments.Quick()
	o.Count = 160
	o.Folds = 2
	o.Epochs = 6
	o.RetrainSizes = []int{0, 40, 80}
	o.Steps = 40
	return o
}

// --- one benchmark per table / figure ---

func BenchmarkTable2CPUPredictionQuality(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3GPUPredictionQuality(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SpeedupDistribution(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9ModelMigration(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11LateVsEarlyMerging(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig11(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverheadPrediction(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOverhead(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- SpMV kernels, one per format, serial and parallel ---

func benchMatrix() *sparse.COO {
	return synthgen.Random(4096, 4096, 4096*16, 1)
}

func BenchmarkSpMV(b *testing.B) {
	c := benchMatrix()
	rows, cols := c.Dims()
	x := make([]float64, cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, rows)
	for _, f := range sparse.AllFormats() {
		m := sparse.MustConvert(c, f)
		k, err := spmv.ForFormat(f)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(f.String()+"/serial", func(b *testing.B) {
			b.SetBytes(m.Bytes())
			for i := 0; i < b.N; i++ {
				k.Mul(y, m, x, 1)
			}
		})
		b.Run(f.String()+"/parallel", func(b *testing.B) {
			b.SetBytes(m.Bytes())
			for i := 0; i < b.N; i++ {
				k.Mul(y, m, x, 0)
			}
		})
	}
}

func BenchmarkSpMVBandedDIAvsCSR(b *testing.B) {
	c := synthgen.Banded(8192, 2, 1.0, 2)
	rows, cols := c.Dims()
	x := make([]float64, cols)
	y := make([]float64, rows)
	dia := sparse.NewDIA(c)
	csr := sparse.NewCSR(c)
	b.Run("DIA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmv.Mul(y, dia, x, 0)
		}
	})
	b.Run("CSR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmv.Mul(y, csr, x, 0)
		}
	})
}

// --- representations (Section 4) ---

func BenchmarkRepresent(b *testing.B) {
	c := benchMatrix()
	for _, kind := range represent.Kinds() {
		cfg := represent.Config{Kind: kind, Size: 128, Bins: 50}
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := represent.Normalize(c, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- format conversions (the §7.6 conversion overhead) ---

func BenchmarkConvert(b *testing.B) {
	c := benchMatrix()
	for _, f := range sparse.AllFormats() {
		b.Run(f.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sparse.MustConvert(c, f)
			}
		})
	}
}

// --- labelling throughput (Figure 3 step 1 substitute) ---

func BenchmarkLabelMatrix(b *testing.B) {
	lab := machine.NewLabeler(machine.XeonLike(), 1)
	c := benchMatrix()
	st := sparse.ComputeStats(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab.Label(st, uint64(i))
	}
}

func BenchmarkComputeStats(b *testing.B) {
	c := benchMatrix()
	for i := 0; i < b.N; i++ {
		sparse.ComputeStats(c)
	}
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationConvImpl compares the im2col+matmul convolution the
// nn package uses against a direct nested-loop convolution.
func BenchmarkAblationConvImpl(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := tensor.ConvGeom{InC: 8, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := tensor.New(g.InC, g.InH, g.InW)
	for i := range in.Data() {
		in.Data()[i] = rng.NormFloat64()
	}
	filters := tensor.New(16, g.InC*g.KH*g.KW)
	for i := range filters.Data() {
		filters.Data()[i] = rng.NormFloat64()
	}
	b.Run("im2col", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cols := tensor.Im2Col(in, g)
			tensor.MatMul(filters, cols)
		}
	})
	b.Run("direct", func(b *testing.B) {
		oh, ow := g.OutH(), g.OutW()
		for i := 0; i < b.N; i++ {
			out := tensor.New(16, oh, ow)
			for f := 0; f < 16; f++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						s := 0.0
						w := 0
						for cch := 0; cch < g.InC; cch++ {
							for kh := 0; kh < g.KH; kh++ {
								for kw := 0; kw < g.KW; kw++ {
									iy := oy + kh - g.PadH
									ix := ox + kw - g.PadW
									if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
										s += filters.At(f, w) * in.At(cch, iy, ix)
									}
									w++
								}
							}
						}
						out.Set(s, f, oy, ox)
					}
				}
			}
		}
	})
}

// BenchmarkAblationTrainWorkers sweeps the data-parallel worker count
// for one training epoch.
func BenchmarkAblationTrainWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	cfg := selector.DefaultConfig(represent.KindHistogram, sparse.CPUFormats())
	cfg.Represent.Size, cfg.Represent.Bins = 16, 8
	samples := make([]nn.Sample, 96)
	for i := range samples {
		m := synthgen.Build(synthgen.SampleSpec(rng, 256))
		chans, err := represent.Normalize(m, cfg.Represent)
		if err != nil {
			b.Fatal(err)
		}
		samples[i] = nn.Sample{Inputs: chans, Label: i % 4}
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(workerLabel(workers), func(b *testing.B) {
			s, err := selector.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			tr := nn.NewTrainer(s.Model, nn.NewAdam(cfg.LearningRate), cfg.BatchSize, 1)
			tr.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.TrainEpoch(samples)
			}
		})
	}
}

func workerLabel(w int) string {
	switch w {
	case 1:
		return "workers-1"
	case 2:
		return "workers-2"
	case 4:
		return "workers-4"
	default:
		return "workers-max"
	}
}

// BenchmarkAblationRepresentationSize sweeps histogram geometry (the
// §7.5 sensitivity to representation granularity).
func BenchmarkAblationRepresentationSize(b *testing.B) {
	c := benchMatrix()
	for _, size := range []int{16, 32, 64, 128} {
		cfg := represent.Config{Kind: represent.KindHistogram, Size: size, Bins: size / 2}
		b.Run(cfg.Kind.String()+"-"+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := represent.Normalize(c, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- NN primitives ---

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := tensor.New(256, 256)
	c := tensor.New(256, 256)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
		c.Data()[i] = rng.NormFloat64()
	}
	b.SetBytes(3 * 256 * 256 * 8)
	for i := 0; i < b.N; i++ {
		tensor.MatMul(a, c)
	}
}

func BenchmarkCNNInference(b *testing.B) {
	cfg := selector.DefaultConfig(represent.KindHistogram, sparse.CPUFormats())
	s, err := selector.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := synthgen.Banded(2048, 3, 1.0, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Predict(m); err != nil {
			b.Fatal(err)
		}
	}
}
