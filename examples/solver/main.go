// Solver: the paper's motivating workload — an iterative linear solver
// whose runtime is dominated by repeated SpMV (§1, §7.6). A conjugate-
// gradient solver asks the trained selector for the best storage format
// of its system matrix once, converts, and then amortises the one-time
// prediction + conversion cost over hundreds of SpMV iterations.
//
//	go run ./examples/solver
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/represent"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

// poisson2D builds the standard 5-point finite-difference Laplacian on
// an n×n grid: a symmetric positive-definite pentadiagonal matrix —
// exactly the kind of system DIA serves well.
func poisson2D(n int) *sparse.COO {
	var es []sparse.Entry
	idx := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := idx(i, j)
			es = append(es, sparse.Entry{Row: r, Col: r, Val: 4})
			if i > 0 {
				es = append(es, sparse.Entry{Row: r, Col: idx(i-1, j), Val: -1})
			}
			if i < n-1 {
				es = append(es, sparse.Entry{Row: r, Col: idx(i+1, j), Val: -1})
			}
			if j > 0 {
				es = append(es, sparse.Entry{Row: r, Col: idx(i, j-1), Val: -1})
			}
			if j < n-1 {
				es = append(es, sparse.Entry{Row: r, Col: idx(i, j+1), Val: -1})
			}
		}
	}
	return sparse.MustCOO(n*n, n*n, es)
}

// cg solves A x = b by conjugate gradients using the given matrix
// representation's parallel SpMV kernel, returning the iteration count.
func cg(a sparse.Matrix, b []float64, tol float64, maxIter int) ([]float64, int) {
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rs := dot(r, r)
	for it := 0; it < maxIter; it++ {
		spmv.Mul(ap, a, p, 0)
		alpha := rs / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		if math.Sqrt(rsNew) < tol {
			return x, it + 1
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x, maxIter
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func main() {
	// Train a selector for the CPU platform (small budget; reuse a
	// saved model in real deployments).
	res, err := core.Train(core.Options{
		Platform: "xeonlike", Count: 400, MaxN: 1024,
		Representation: represent.KindHistogram, RepSize: 16, RepBins: 8,
		Epochs: 25, Seed: 3, Log: os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	a := poisson2D(96) // 9216 unknowns, pentadiagonal
	rows, _ := a.Dims()
	b := make([]float64, rows)
	for i := range b {
		b[i] = 1
	}

	// Ask the selector for the format, convert once, then solve.
	start := time.Now()
	chosen, format, err := core.BestFormat(res.Selector, a)
	if err != nil {
		log.Fatal(err)
	}
	convDur := time.Since(start)

	start = time.Now()
	x, iters := cg(chosen, b, 1e-8, 2000)
	solveChosen := time.Since(start)

	// Compare against solving in the CSR default.
	csr := sparse.NewCSR(a)
	start = time.Now()
	_, itersCSR := cg(csr, b, 1e-8, 2000)
	solveCSR := time.Since(start)

	fmt.Printf("\n2-D Poisson system: %d unknowns, %d nonzeros\n", rows, a.NNZ())
	fmt.Printf("selector chose %s (prediction+conversion: %v)\n", format, convDur)
	fmt.Printf("CG in %-4s: %4d iterations, %v\n", format, iters, solveChosen)
	fmt.Printf("CG in CSR : %4d iterations, %v\n", itersCSR, solveCSR)
	fmt.Printf("residual check: x[0]=%.6f\n", x[0])
}
