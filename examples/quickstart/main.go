// Quickstart: train a small CNN format selector for a simulated CPU,
// then use it to pick the storage format for new matrices.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/represent"
	"repro/internal/sparse"
	"repro/internal/synthgen"
)

func main() {
	// Train end to end: generate + label a corpus on the Intel-like
	// platform (Figure 3 steps 1-4), fit the late-merging histogram CNN.
	res, err := core.Train(core.Options{
		Platform:       "xeonlike",
		Count:          400,
		MaxN:           1024,
		Representation: represent.KindHistogram,
		RepSize:        16, RepBins: 8,
		Epochs: 25,
		Seed:   1,
		Log:    os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Metrics)

	// Predict the best format for fresh matrices of known structure.
	cases := []struct {
		name string
		m    *sparse.COO
	}{
		{"tridiagonal band", synthgen.Banded(2000, 1, 1.0, 99)},
		{"uniform 8/row", synthgen.Uniform(2000, 8, 0, 99)},
		{"random scatter", synthgen.Random(2000, 2000, 24000, 99)},
		{"hypersparse tall", synthgen.Hypersparse(80000, 1000, 900, 99)},
	}
	fmt.Println("predictions for new matrices:")
	for _, c := range cases {
		format, probs, err := res.Selector.Predict(c.m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s -> %-4s (p=%.2f)\n", c.name, format, probs[format])
	}

	// Convert to the chosen format and run the parallel SpMV kernel.
	chosen, format, err := core.BestFormat(res.Selector, cases[0].m)
	if err != nil {
		log.Fatal(err)
	}
	sec := machine.Measure(chosen, 0, 5)
	fmt.Printf("\nSpMV on %s in %s: %.3g s/iteration\n", cases[0].name, format, sec)
}
