// Autotune: the on-the-fly usage model of §7.6 — matrices are generated
// and consumed during execution, so prediction and format conversion
// happen at runtime and must be amortised. The example processes a
// stream of matrices, each needing many SpMV iterations; it compares
// (a) always using CSR, and (b) asking the CNN selector per matrix,
// counting prediction and conversion time against the savings.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/represent"
	"repro/internal/sparse"
	"repro/internal/spmv"
	"repro/internal/synthgen"
)

func main() {
	res, err := core.Train(core.Options{
		Platform: "xeonlike", Count: 400, MaxN: 1024,
		Representation: represent.KindHistogram, RepSize: 16, RepBins: 8,
		Epochs: 25, Seed: 9, Log: os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A stream of matrices as an application would produce them.
	rng := rand.New(rand.NewSource(77))
	var stream []*sparse.COO
	for i := 0; i < 8; i++ {
		stream = append(stream, synthgen.Build(synthgen.SampleSpec(rng, 2048)))
	}
	const itersPerMatrix = 200 // e.g. inner solver iterations

	fmt.Printf("\nprocessing %d matrices × %d SpMV iterations each\n\n", len(stream), itersPerMatrix)
	var totalCSR, totalTuned, overhead time.Duration
	for i, c := range stream {
		rows, cols := c.Dims()
		x := make([]float64, cols)
		for j := range x {
			x[j] = 1
		}
		y := make([]float64, rows)

		// Baseline: CSR for everything.
		csr := sparse.NewCSR(c)
		start := time.Now()
		iterate(csr, y, x, itersPerMatrix)
		csrDur := time.Since(start)
		totalCSR += csrDur

		// Tuned: predict, convert, then iterate.
		start = time.Now()
		chosen, format, err := core.BestFormat(res.Selector, c)
		if err != nil {
			log.Fatal(err)
		}
		predConv := time.Since(start)
		overhead += predConv
		start = time.Now()
		iterate(chosen, y, x, itersPerMatrix)
		tunedDur := time.Since(start) + predConv
		totalTuned += tunedDur

		fmt.Printf("matrix %d (%dx%d, %d nnz): chose %-4s  csr=%v tuned=%v (overhead %v)\n",
			i, rows, cols, c.NNZ(), format, csrDur.Round(time.Microsecond),
			tunedDur.Round(time.Microsecond), predConv.Round(time.Microsecond))
	}
	fmt.Printf("\ntotal: always-CSR %v, tuned %v (incl. %v prediction+conversion)\n",
		totalCSR.Round(time.Millisecond), totalTuned.Round(time.Millisecond),
		overhead.Round(time.Millisecond))
	if totalTuned < totalCSR {
		fmt.Printf("tuned pipeline is %.2fx faster end to end\n",
			float64(totalCSR)/float64(totalTuned))
	} else {
		fmt.Printf("tuned pipeline is %.2fx of CSR here — small matrices "+
			"and short iteration counts favour the default (see §7.6)\n",
			float64(totalTuned)/float64(totalCSR))
	}
}

func iterate(m sparse.Matrix, y, x []float64, iters int) {
	for k := 0; k < iters; k++ {
		spmv.Mul(y, m, x, 0)
	}
}
