// Pagerank: the paper's §1 motivating citation (Brin & Page's web
// ranking) as a workload — power iteration on a scale-free adjacency
// matrix, which is SpMV-bound and skew-heavy. The selector picks the
// storage format; the example compares iteration throughput across
// formats and reports the dominant-eigenvalue estimate.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/represent"
	"repro/internal/sparse"
	"repro/internal/spmv"
	"repro/internal/synthgen"
)

func main() {
	res, err := core.Train(core.Options{
		Platform: "xeonlike", Count: 400, MaxN: 1024,
		Representation: represent.KindHistogram, RepSize: 16, RepBins: 8,
		Epochs: 25, Seed: 11, Log: os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A web-graph-like adjacency: RMAT scatter with power-law degrees.
	n := 4096
	graph := synthgen.Kronecker(n, n*16, 0.57, 0.19, 0.19, 42)
	st := sparse.ComputeStats(graph)
	fmt.Printf("\ngraph: %d nodes, %d edges, row-degree cv %.2f\n", n, graph.NNZ(), st.RowNNZCV)

	_, format, err := core.BestFormat(res.Selector, graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selector chose %s\n\n", format)

	const iters = 60
	fmt.Printf("%-6s %14s %14s\n", "format", "60 iterations", "lambda-max")
	compare := []sparse.Format{format}
	for _, f := range []sparse.Format{sparse.FormatCSR, sparse.FormatCOO} {
		if f != format {
			compare = append(compare, f)
		}
	}
	for _, f := range compare {
		m, err := sparse.Convert(graph, f)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		lambda := spmv.PowerIterate(m, iters, 0)
		fmt.Printf("%-6s %14v %14.4f\n", f, time.Since(start).Round(time.Microsecond), lambda)
	}
}
