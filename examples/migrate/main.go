// Migrate: cross-architecture model migration with transfer learning
// (Section 6). A selector trained for the Intel-like platform is ported
// to the AMD-like platform three ways — from scratch, continuous
// evolvement, top evolvement — using only a small target-platform label
// budget, and the resulting accuracies are compared (Figure 9 in
// miniature).
//
//	go run ./examples/migrate
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/represent"
	"repro/internal/selector"
)

func main() {
	// Source platform model (expensive, done once).
	fmt.Println("== training source model on xeonlike ==")
	src, err := core.Train(core.Options{
		Platform: "xeonlike", Count: 500, MaxN: 1024,
		Representation: represent.KindHistogram, RepSize: 16, RepBins: 8,
		Epochs: 25, Seed: 5, Log: os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Target platform: relabel the same matrices with the AMD-like
	// machine model (in production this is the expensive SpMV timing
	// campaign transfer learning seeks to shrink).
	target := src.Dataset.Relabel(machine.NewLabeler(machine.A8Like(), 5))
	differ := 0
	for i := range target.Records {
		if target.Records[i].Label != src.Dataset.Records[i].Label {
			differ++
		}
	}
	fmt.Printf("\nlabels differ on %d of %d matrices between platforms\n", differ, len(target.Records))

	trainIdx, testIdx := target.Split(0.3, 17)
	budget := 120 // small target-platform label budget
	if budget > len(trainIdx) {
		budget = len(trainIdx)
	}
	small := trainIdx[:budget]

	testSamples, err := src.Selector.Samples(target, testIdx)
	if err != nil {
		log.Fatal(err)
	}
	trainSamples, err := src.Selector.Samples(target, small)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("retraining budget: %d target-platform labels\n\n", budget)
	for _, method := range selector.TransferMethods() {
		migrated, err := selector.Transfer(src.Selector, method)
		if err != nil {
			log.Fatal(err)
		}
		if method != selector.FromScratch {
			migrated.Cfg.LearningRate *= 0.4
		}
		if _, err := migrated.TrainSamples(trainSamples); err != nil {
			log.Fatal(err)
		}
		m, err := migrated.EvaluateSamples(testSamples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s accuracy on a8like: %.1f%%\n", method, m.Accuracy()*100)
	}
}
