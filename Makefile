GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: build, vet, and the full test suite under the
# race detector (worker pools, the imported-matrix registry and the
# checkpointer are all concurrency-sensitive).
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchtime=200ms -run=^$$ .
