GO ?= go

.PHONY: build test check smoke gendrill corpusdrill clusterdrill overloaddrill shepherddrill fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: build, vet, the serve smoke test, the gendata
# kill→resume drill, and the full test suite under the race detector
# (worker pools, the imported-matrix registry, the checkpointer and the
# serving tier are all concurrency-sensitive).
check:
	./scripts/check.sh

# smoke runs only the end-to-end inference-service smoke test: train a
# tiny model, boot cmd/serve on a free port, predict over HTTP, check
# caching, hot reload and graceful drain.
smoke:
	$(GO) run ./scripts/servesmoke

# gendrill runs only the corpus crash drill: SIGKILL a journaled
# gendata build mid-flight, resume it, require byte-identical output,
# and prove an injected poison matrix is quarantined rather than fatal.
gendrill:
	$(GO) run ./scripts/gendrill

# corpusdrill runs only the streamed-corpus crash drill: SIGKILL a bulk
# MatrixMarket ingest mid-flight, resume it to a byte-identical store,
# then corrupt shards and require training and the held-out evaluation
# to complete on salvage (quarantine + salvage.json) instead of
# aborting.
corpusdrill:
	$(GO) run ./scripts/corpusdrill

# clusterdrill runs only the cluster chaos drill: boot a router in
# front of three serve replicas, replay heavy-tailed load, SIGKILL the
# shard-owning replica mid-run, and require >= 99% success plus router
# reconvergence once the victim restarts.
clusterdrill:
	$(GO) run ./scripts/clusterdrill

# overloaddrill runs only the overload-control drill: router + two
# SLO-armed replicas behind a retry budget, an open-loop Poisson surge
# at 5x measured capacity, and hard assertions that goodput holds (no
# congestion collapse), overload answers are sheds rather than errors,
# brownout engages under the surge and the tier recovers within 10s of
# the load dropping.
overloaddrill:
	$(GO) run ./scripts/overloaddrill

# shepherddrill runs only the continual-learning drill: serve + shepherd
# on real binaries, shifted traffic trips the drift detector, a
# top-evolvement retrain shadows live traffic and is promoted through
# the probe-validated hot reload, and a fault-injected corrupt candidate
# is rejected while the live model keeps serving.
shepherddrill:
	$(GO) run ./scripts/shepherddrill

# fuzz runs the native fuzz targets over the hardened ingestion
# surfaces (MatrixMarket parsing and the predict request path). Budget
# per target is FUZZTIME (default 30s); CI runs a shorter smoke via
# scripts/check.sh.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzReadMatrixMarket$$' -fuzztime=$(FUZZTIME) ./internal/sparse
	$(GO) test -run='^$$' -fuzz='^FuzzPredictJSON$$' -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzLoadDataset$$' -fuzztime=$(FUZZTIME) ./internal/dataset
	$(GO) test -run='^$$' -fuzz='^FuzzSalvageShard$$' -fuzztime=$(FUZZTIME) ./internal/dataset

# bench runs every benchmark in the module (the per-paper-table harness
# at the root plus the per-package hot-path benchmarks) and converts
# the output into BENCH.json for artifact upload and regression gating.
# benchgate compares BENCH.json against the committed fixed-seed
# baseline and fails on >25% ns/op regressions (and allocs/op
# regressions — with a baseline of 0 gated exactly) on guarded hot
# paths. The guarded hot paths get extra -count=3 samples; benchjson
# keeps the fastest run per benchmark, and min-of-N is what makes a
# 25% gate threshold hold on noisy shared runners. -benchmem is
# mandatory on the guarded run: the alloc columns are part of the gate.
BENCHTIME ?= 200ms
GUARDED_PKGS = ./internal/spmv ./internal/tensor ./internal/represent ./internal/serve ./internal/dataset ./internal/nn
GUARDED_BENCH = 'KernelMul|MatMul|Normalize|Predict|ShardIter|Infer32'
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -benchmem -run=^$$ ./... > BENCH.txt || { cat BENCH.txt; exit 1; }
	$(GO) test -bench=$(GUARDED_BENCH) -benchtime=$(BENCHTIME) -benchmem -count=3 -run=^$$ $(GUARDED_PKGS) >> BENCH.txt || { cat BENCH.txt; exit 1; }
	cat BENCH.txt
	$(GO) run ./scripts/benchjson -o BENCH.json < BENCH.txt

# bench-guarded runs only the guarded hot-path benchmarks — the set
# benchgate actually gates — with -benchmem at -count=3 (benchjson
# keeps the fastest run and the minimum alloc columns). This is what
# the CI perf job runs: minutes instead of the full harness's hour,
# tight enough to sit on every pull request.
.PHONY: bench-guarded
bench-guarded:
	$(GO) test -bench=$(GUARDED_BENCH) -benchtime=$(BENCHTIME) -benchmem -count=3 -run=^$$ $(GUARDED_PKGS) > BENCH.txt || { cat BENCH.txt; exit 1; }
	cat BENCH.txt
	$(GO) run ./scripts/benchjson -o BENCH.json < BENCH.txt

.PHONY: benchgate
benchgate:
	$(GO) run ./scripts/benchgate -baseline BENCH_baseline.json -current BENCH.json
