GO ?= go

.PHONY: build test check smoke fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: build, vet, the serve smoke test, and the full
# test suite under the race detector (worker pools, the imported-matrix
# registry, the checkpointer and the serving tier are all
# concurrency-sensitive).
check:
	./scripts/check.sh

# smoke runs only the end-to-end inference-service smoke test: train a
# tiny model, boot cmd/serve on a free port, predict over HTTP, check
# caching, hot reload and graceful drain.
smoke:
	$(GO) run ./scripts/servesmoke

# fuzz runs the native fuzz targets over the hardened ingestion
# surfaces (MatrixMarket parsing and the predict request path). Budget
# per target is FUZZTIME (default 30s); CI runs a shorter smoke via
# scripts/check.sh.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzReadMatrixMarket$$' -fuzztime=$(FUZZTIME) ./internal/sparse
	$(GO) test -run='^$$' -fuzz='^FuzzPredictJSON$$' -fuzztime=$(FUZZTIME) ./internal/serve

bench:
	$(GO) test -bench=. -benchtime=200ms -run=^$$ .
