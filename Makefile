GO ?= go

.PHONY: build test check smoke bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: build, vet, the serve smoke test, and the full
# test suite under the race detector (worker pools, the imported-matrix
# registry, the checkpointer and the serving tier are all
# concurrency-sensitive).
check:
	./scripts/check.sh

# smoke runs only the end-to-end inference-service smoke test: train a
# tiny model, boot cmd/serve on a free port, predict over HTTP, check
# caching, hot reload and graceful drain.
smoke:
	$(GO) run ./scripts/servesmoke

bench:
	$(GO) test -bench=. -benchtime=200ms -run=^$$ .
