// Command shepherddrill is the continual-learning fire drill for the
// serve→retrain→redeploy loop (wired into scripts/check.sh / make
// check and CI). It exercises the real binaries end to end:
//
//  1. builds a narrow banded-family training corpus, trains a tiny
//     model on it and saves both artifacts,
//  2. builds cmd/serve and cmd/shepherd, starts a replica with
//     feedback capture + shadow mirroring and the shepherd supervising
//     it with the training corpus as drift baseline,
//  3. replays the training corpus as baseline traffic and requires the
//     drift detector to stay quiet,
//  4. switches to a shifted workload (large random-scatter matrices the
//     corpus never saw) flowing continuously in the background — every
//     response must stay 200 with a valid format the whole drill, which
//     is the proof that shadow evaluation never touches a response,
//  5. requires the loop to close on its own: drift confirmed →
//     top-evolvement retrain → candidate shadow-loaded and mirrored on
//     live traffic → promotion via the watcher's probe-validated hot
//     reload (serve_model_generation >= 2) — all journaled in order,
//  6. snapshots the shepherd's scorecard.json to -artifact,
//  7. re-runs the loop with SHEPHERD_FAULT_INJECT corrupting the
//     retrained candidate and requires the serving tier to reject it
//     (journal says candidate-rejected, generation stays 1, traffic
//     stays healthy),
//  8. SIGTERMs everything and requires clean drains.
//
// It exits 0 only if every step passes. -short shrinks corpus and
// window sizes for SHORT=1 check runs.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feedback"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/synthgen"
)

var short = flag.Bool("short", false, "shrink the drill (for SHORT=1 check runs)")
var artifact = flag.String("artifact", "", "write the final shepherd scorecard JSON here (empty = skip)")

const (
	platform = "xeonlike"
	labSeed  = 7
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shepherddrill: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("shepherddrill: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "shepherddrill")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	corpusN := 140
	if *short {
		corpusN = 100
	}

	// 1. A deliberately narrow training corpus: banded matrices only, so
	// the drift baseline has tight feature spreads and the shifted
	// workload later is unambiguously out of distribution.
	step("building banded training corpus")
	p, err := machine.PlatformByName(platform)
	if err != nil {
		return err
	}
	lab := machine.NewLabeler(p, labSeed)
	train := &dataset.Dataset{Platform: p.Name, Formats: lab.Formats}
	rng := rand.New(rand.NewSource(labSeed))
	for i := 0; i < corpusN; i++ {
		spec := synthgen.Spec{
			Family: synthgen.FamilyBanded,
			N:      48 + rng.Intn(33), // n in [48, 80]: patterns stay under the capture cap
			Band:   2 + rng.Intn(3),
			Fill:   0.85 + 0.1*rng.Float64(),
			Seed:   int64(i + 1),
		}
		m := synthgen.Build(spec)
		st := sparse.ComputeStats(m)
		label, times := lab.Label(st, uint64(i))
		train.Records = append(train.Records, dataset.Record{
			ID: uint64(i), Spec: spec, Stats: st, Label: label, Times: times,
		})
	}
	trainPath := filepath.Join(dir, "train.gob")
	if err := train.Save(trainPath); err != nil {
		return err
	}

	step("training tiny model on it")
	epochs := 3
	if *short {
		epochs = 2
	}
	model := filepath.Join(dir, "model.gob")
	res, err := core.Train(core.Options{
		Platform: platform, DatasetPath: trainPath,
		Epochs: epochs, RepSize: 16, RepBins: 8, Seed: labSeed,
	})
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	if err := res.Selector.SaveFile(model); err != nil {
		return err
	}

	step("building binaries")
	bins := map[string]string{}
	for _, name := range []string{"serve", "shepherd"} {
		bin := filepath.Join(dir, name)
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput(); err != nil {
			return fmt.Errorf("go build ./cmd/%s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	bodies := corpusBodies(train)

	// Leg 1: the full happy path — drift, retrain, shadow, promote.
	if err := happyLeg(dir, bins, model, trainPath, bodies); err != nil {
		return fmt.Errorf("happy path: %w", err)
	}

	// Leg 2: same loop, but fault injection corrupts the retrained
	// candidate — the probe-validated shadow load must reject it and
	// the live model must keep serving.
	if err := corruptLeg(dir, bins, model, trainPath); err != nil {
		return fmt.Errorf("corrupt-candidate path: %w", err)
	}
	return nil
}

// procs is one serve+shepherd pair with its scrape-derived endpoints.
type procs struct {
	serve, shepherd   *exec.Cmd
	serveURL          string // traffic
	adminURL          string // serve admin (shadow control + metrics)
	shepMetricsURL    string
	workDir, feedback string
}

// start boots a serve replica and a shepherd supervising it.
// shepherdEnv entries are appended to the shepherd's environment.
func start(dir string, bins map[string]string, model, trainPath, tag string, shepherdEnv []string) (*procs, error) {
	pr := &procs{
		workDir:  filepath.Join(dir, "work-"+tag),
		feedback: filepath.Join(dir, "feedback-"+tag),
	}
	if err := os.MkdirAll(pr.feedback, 0o755); err != nil {
		return nil, err
	}

	serve := exec.Command(bins["serve"],
		"-addr", "127.0.0.1:0",
		"-admin-addr", "127.0.0.1:0",
		"-model", model,
		"-watch", "100ms",
		"-cache", "512",
		"-batch-window", "1ms",
		"-feedback-dir", pr.feedback,
		"-feedback-segment-age", "250ms",
		"-shadow-sample", "1",
	)
	serve.Stderr = io.Discard
	sout, err := serve.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := serve.Start(); err != nil {
		return nil, err
	}
	pr.serve = serve
	got, err := scrapeLines(sout, map[string]*regexp.Regexp{
		"admin":   regexp.MustCompile(`serve: admin listening on (http://\S+)`),
		"traffic": regexp.MustCompile(`serve: listening on (http://\S+)`),
	})
	if err != nil {
		serve.Process.Kill()
		return nil, err
	}
	pr.adminURL, pr.serveURL = got["admin"], got["traffic"]

	minRecords, window := "48", "12"
	if *short {
		minRecords = "36"
	}
	shep := exec.Command(bins["shepherd"],
		"-work", pr.workDir,
		"-model", model,
		"-admin", pr.adminURL,
		"-feedback-dir", pr.feedback,
		"-train-dataset", trainPath,
		"-platform", platform,
		"-seed", fmt.Sprint(labSeed),
		"-interval", "150ms",
		"-window", window,
		"-trip-after", "2",
		"-clear-after", "2",
		// A tiny drill model's prediction mix never matches the oracle
		// label mix (that is an accuracy problem, not drift), so the mix
		// signal is disabled (TV distance cannot exceed 1) and the
		// feature-shift signal carries the drill.
		"-mix-threshold", "1.1",
		"-feature-threshold", "2.0",
		"-rung-threshold", "0.9",
		"-min-records", minRecords,
		"-retrain-epochs", "2",
		"-shadow-min-samples", "8",
		"-promote-timeout", "30s",
		"-metrics-addr", "127.0.0.1:0",
	)
	shep.Env = append(os.Environ(), shepherdEnv...)
	shep.Stderr = os.Stderr
	shout, err := shep.StdoutPipe()
	if err != nil {
		serve.Process.Kill()
		return nil, err
	}
	if err := shep.Start(); err != nil {
		serve.Process.Kill()
		return nil, err
	}
	pr.shepherd = shep
	got, err = scrapeLines(shout, map[string]*regexp.Regexp{
		"metrics": regexp.MustCompile(`shepherd: metrics listening on (http://\S+)`),
	})
	if err != nil {
		serve.Process.Kill()
		shep.Process.Kill()
		return nil, err
	}
	pr.shepMetricsURL = got["metrics"]
	return pr, nil
}

func (pr *procs) kill() {
	if pr.serve != nil {
		pr.serve.Process.Kill()
	}
	if pr.shepherd != nil {
		pr.shepherd.Process.Kill()
	}
}

// drain SIGTERMs both processes and requires clean exits.
func (pr *procs) drain() error {
	for name, proc := range map[string]*exec.Cmd{"serve": pr.serve, "shepherd": pr.shepherd} {
		if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
	}
	for name, proc := range map[string]*exec.Cmd{"serve": pr.serve, "shepherd": pr.shepherd} {
		done := make(chan error, 1)
		go func() { done <- proc.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("%s exited uncleanly after SIGTERM: %v", name, err)
			}
		case <-time.After(20 * time.Second):
			return fmt.Errorf("%s did not drain within 20s of SIGTERM", name)
		}
	}
	return nil
}

func happyLeg(dir string, bins map[string]string, model, trainPath string, bodies [][]byte) error {
	step("starting serve + shepherd (happy path)")
	pr, err := start(dir, bins, model, trainPath, "happy", nil)
	if err != nil {
		return err
	}
	defer pr.kill()

	if err := waitReady(pr.serveURL); err != nil {
		return err
	}

	// 3. Baseline traffic: replay the training corpus. The detector must
	// stay quiet — this is the distribution it was profiled on.
	step(fmt.Sprintf("sending %d baseline requests (training distribution)", len(bodies)))
	for i, b := range bodies {
		if err := post(pr.serveURL, b); err != nil {
			return fmt.Errorf("baseline request %d: %w", i, err)
		}
	}
	// Let the rotation + fold pipeline catch up, then check no drift.
	if err := waitFor(20*time.Second, func() (bool, error) {
		vals, err := scrape(pr.shepMetricsURL + "/metrics")
		if err != nil {
			return false, nil
		}
		return vals["feedback_shepherd_corpus_records"] >= float64(len(bodies))*0.8, nil
	}); err != nil {
		return fmt.Errorf("baseline feedback never reached the online corpus: %w", err)
	}
	vals, err := scrape(pr.shepMetricsURL + "/metrics")
	if err != nil {
		return err
	}
	if vals["feedback_drift_state"] != 0 {
		return fmt.Errorf("drift state %v after in-distribution traffic, want 0 (stable)", vals["feedback_drift_state"])
	}
	sv, err := scrape(pr.adminURL + "/metrics")
	if err != nil {
		return err
	}
	if sv["feedback_entries_total"] < float64(len(bodies)) {
		return fmt.Errorf("feedback_entries_total = %v after %d requests", sv["feedback_entries_total"], len(bodies))
	}
	step("baseline clean: drift state stable, corpus folded")

	// 4. Shifted workload in the background. Every response must stay
	// healthy for the rest of the leg — shadow mirroring included.
	step("starting shifted workload (out-of-distribution)")
	stop := make(chan struct{})
	var reqs, failures atomic.Int64
	var firstFail atomic.Value
	go func() {
		r := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := post(pr.serveURL, shiftedBody(r)); err != nil {
				failures.Add(1)
				firstFail.CompareAndSwap(nil, err)
			}
			reqs.Add(1)
			time.Sleep(5 * time.Millisecond)
		}
	}()
	defer close(stop)

	// 5. The loop must close by itself. Stages are asserted in order so
	// a hang points at the broken stage.
	step("waiting for drift to be confirmed")
	if err := waitFor(90*time.Second, func() (bool, error) {
		vals, err := scrape(pr.shepMetricsURL + "/metrics")
		if err != nil {
			return false, nil
		}
		return vals["feedback_shepherd_retrains_total"] >= 1 || vals["feedback_drift_state"] == 2, nil
	}); err != nil {
		return fmt.Errorf("drift never confirmed under shifted load: %w", err)
	}
	step("drift confirmed; waiting for retrain + shadow traffic")
	if err := waitFor(120*time.Second, func() (bool, error) {
		sv, err := scrape(pr.adminURL + "/metrics")
		if err != nil {
			return false, nil
		}
		return sv["serve_shadow_requests_total"] >= 1, nil
	}); err != nil {
		return fmt.Errorf("candidate never mirrored live traffic: %w", err)
	}
	step("candidate shadowing live traffic; waiting for promotion")
	if err := waitFor(120*time.Second, func() (bool, error) {
		sv, err := scrape(pr.adminURL + "/metrics")
		if err != nil {
			return false, nil
		}
		shv, err := scrape(pr.shepMetricsURL + "/metrics")
		if err != nil {
			return false, nil
		}
		return sv["serve_model_generation"] >= 2 && shv["feedback_shepherd_promotions_total"] >= 1, nil
	}); err != nil {
		return fmt.Errorf("candidate was never promoted: %w", err)
	}
	step("candidate promoted through hot reload")

	// Traffic stayed healthy through shadow + promotion.
	if n := failures.Load(); n > 0 {
		return fmt.Errorf("%d/%d shifted requests failed (first: %v) — shadowing leaked into responses",
			n, reqs.Load(), firstFail.Load())
	}
	if reqs.Load() < 50 {
		return fmt.Errorf("only %d shifted requests flowed; the drill measured nothing", reqs.Load())
	}
	fmt.Printf("shepherddrill: %d shifted requests, 0 failures\n", reqs.Load())

	// The journal must show the machine walking the full cycle.
	entries, err := feedback.ReadJournal(filepath.Join(pr.workDir, "journal.jsonl"))
	if err != nil {
		return err
	}
	if err := expectJournalCycle(entries); err != nil {
		return err
	}
	var promoted bool
	for _, e := range entries {
		if e.To == feedback.StateObserving && strings.HasPrefix(e.Reason, "promoted") {
			promoted = true
		}
	}
	if !promoted {
		return fmt.Errorf("journal records no promotion: %+v", entries)
	}

	// 6. Scorecard artifact.
	card, err := os.ReadFile(filepath.Join(pr.workDir, "scorecard.json"))
	if err != nil {
		return fmt.Errorf("shepherd wrote no scorecard: %w", err)
	}
	var sc feedback.Scorecard
	if err := json.Unmarshal(card, &sc); err != nil {
		return fmt.Errorf("scorecard does not parse: %w", err)
	}
	if *artifact != "" {
		if err := os.MkdirAll(filepath.Dir(*artifact), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(*artifact, card, 0o644); err != nil {
			return err
		}
		fmt.Println("shepherddrill: wrote scorecard artifact to " + *artifact)
	}

	// 8 (first half). Clean drains.
	step("checking graceful shutdown")
	return pr.drain()
}

func corruptLeg(dir string, bins map[string]string, model, trainPath string) error {
	step("starting serve + shepherd (corrupt-candidate path)")
	pr, err := start(dir, bins, model, trainPath, "corrupt",
		[]string{"SHEPHERD_FAULT_INJECT=shepherd.candidate.corrupt:1"})
	if err != nil {
		return err
	}
	defer pr.kill()
	if err := waitReady(pr.serveURL); err != nil {
		return err
	}

	// Shifted traffic from the start: the promoted leg-1 model never
	// trained on banded data, and more to the point the leg-2 baseline
	// profile is still the banded corpus — drift trips, a retrain runs,
	// and fault injection corrupts the candidate artifact.
	stop := make(chan struct{})
	var failures atomic.Int64
	var firstFail atomic.Value
	go func() {
		r := rand.New(rand.NewSource(1234))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := post(pr.serveURL, shiftedBody(r)); err != nil {
				failures.Add(1)
				firstFail.CompareAndSwap(nil, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	defer close(stop)

	step("waiting for the corrupted candidate to be rejected")
	journal := filepath.Join(pr.workDir, "journal.jsonl")
	if err := waitFor(180*time.Second, func() (bool, error) {
		entries, err := feedback.ReadJournal(journal)
		if err != nil {
			return false, nil
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Reason, "candidate-rejected") {
				return true, nil
			}
		}
		return false, nil
	}); err != nil {
		return fmt.Errorf("corrupted candidate was never rejected: %w", err)
	}

	// The rejection must have left the live model untouched and serving.
	sv, err := scrape(pr.adminURL + "/metrics")
	if err != nil {
		return err
	}
	if sv["serve_model_generation"] != 1 {
		return fmt.Errorf("model generation %v after corrupt candidate, want 1 (no promotion)", sv["serve_model_generation"])
	}
	if sv["serve_shadow_rejects_total"] < 1 {
		return fmt.Errorf("serve_shadow_rejects_total = %v, want >= 1", sv["serve_shadow_rejects_total"])
	}
	shv, err := scrape(pr.shepMetricsURL + "/metrics")
	if err != nil {
		return err
	}
	if shv["feedback_shepherd_rejections_total"] < 1 {
		return fmt.Errorf("feedback_shepherd_rejections_total = %v, want >= 1", shv["feedback_shepherd_rejections_total"])
	}
	if n := failures.Load(); n > 0 {
		return fmt.Errorf("%d requests failed during the corrupt-candidate drill (first: %v)", n, firstFail.Load())
	}
	step("corrupt candidate rejected; live model kept serving")

	step("checking graceful shutdown")
	return pr.drain()
}

// expectJournalCycle asserts the To-state sequence contains the ordered
// cycle observing→retraining→shadowing→promoting→observing.
func expectJournalCycle(entries []feedback.JournalEntry) error {
	want := []string{
		feedback.StateRetraining,
		feedback.StateShadowing,
		feedback.StatePromoting,
		feedback.StateObserving,
	}
	i := 0
	for _, e := range entries {
		if i < len(want) && e.To == want[i] {
			i++
		}
	}
	if i != len(want) {
		return fmt.Errorf("journal lacks the full cycle (matched %d/%d stages): %+v", i, len(want), entries)
	}
	return nil
}

// corpusBodies renders every training-corpus matrix as a predict body.
func corpusBodies(d *dataset.Dataset) [][]byte {
	var out [][]byte
	for i := range d.Records {
		out = append(out, matrixBody(d.Records[i].Matrix()))
	}
	return out
}

// shiftedBody builds one out-of-distribution matrix: a large random
// scatter — dimensions, diagonal count and row spread all far outside
// the banded training profile — unique per call so it always misses
// the cache and flows through the batch (and shadow) path.
func shiftedBody(r *rand.Rand) []byte {
	n := 200 + r.Intn(57)
	var req struct {
		Rows    int          `json:"rows"`
		Cols    int          `json:"cols"`
		Entries [][3]float64 `json:"entries"`
	}
	req.Rows, req.Cols = n, n
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			req.Entries = append(req.Entries, [3]float64{float64(i), float64(r.Intn(n)), 1})
		}
	}
	b, _ := json.Marshal(req)
	return b
}

func matrixBody(m *sparse.COO) []byte {
	rows, cols := m.Dims()
	var req struct {
		Rows    int          `json:"rows"`
		Cols    int          `json:"cols"`
		Entries [][3]float64 `json:"entries"`
	}
	req.Rows, req.Cols = rows, cols
	for i := range m.Rows {
		req.Entries = append(req.Entries, [3]float64{float64(m.Rows[i]), float64(m.Cols[i]), 1})
	}
	b, _ := json.Marshal(req)
	return b
}

func step(msg string) { fmt.Println("shepherddrill:", msg) }

// scrapeLines reads a child's stdout until every pattern has matched
// (first capture group kept), then keeps draining the pipe so the
// child never blocks on a full pipe buffer.
func scrapeLines(rd io.Reader, want map[string]*regexp.Regexp) (map[string]string, error) {
	sc := bufio.NewScanner(rd)
	got := map[string]string{}
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		for key, re := range want {
			if _, ok := got[key]; ok {
				continue
			}
			if m := re.FindStringSubmatch(line); m != nil {
				got[key] = m[1]
			}
		}
		if len(got) == len(want) {
			go func() {
				for sc.Scan() {
				}
			}()
			return got, nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	missing := []string{}
	for key := range want {
		if _, ok := got[key]; !ok {
			missing = append(missing, key)
		}
	}
	return nil, fmt.Errorf("child never printed: %s", strings.Join(missing, ", "))
}

func waitReady(base string) error {
	return waitFor(20*time.Second, func() (bool, error) {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false, nil
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK, nil
	})
}

func waitFor(limit time.Duration, cond func() (bool, error)) error {
	deadline := time.Now().Add(limit)
	for {
		ok, err := cond()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", limit)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// post sends one predict request and fails unless it answers 200 with
// a parseable format — the leg-long health invariant.
func post(base string, body []byte) error {
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return fmt.Errorf("bad predict body %q: %v", data, err)
	}
	if _, err := sparse.ParseFormat(out.Format); err != nil {
		return err
	}
	return nil
}

// scrape fetches and parses a Prometheus text page.
func scrape(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return obs.ParseMetrics(resp.Body)
}
