// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document for artifact upload and for the
// benchmark-regression gate (scripts/benchgate).
//
//	go test -bench=. -benchmem -run='^$' ./... > BENCH.txt
//	go run ./scripts/benchjson -o BENCH.json < BENCH.txt
//
// Benchmarks are keyed by "<import path>/<benchmark name>" with the
// GOMAXPROCS suffix stripped, so keys are stable across machines with
// different core counts. When the same key appears more than once
// (e.g. -count=N), the fastest run's timing is kept — the minimum is
// the least noisy estimate of the true cost — and the memory columns
// are merged as the minimum over the runs that reported them, so a
// re-run without -benchmem cannot erase alloc data a -benchmem run
// already produced.
//
// The memory columns are pointers in the schema: "allocs_per_op": 0 is
// a real measurement (an allocation-free hot path is exactly the
// contract the gate exists to protect) and must survive the round
// trip, while a benchmark that never reported allocs omits the field
// entirely. An omitted field and a zero are different facts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. NsPerOp is always present; the
// remaining columns are nil when the benchmark did not report them
// (no -benchmem, no b.SetBytes), never silently zero.
type Result struct {
	Iterations  int      `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Doc is the top-level BENCH.json schema.
type Doc struct {
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)
	procSufRe = regexp.MustCompile(`-\d+$`)
)

// minPtr merges one optional column across runs: absent stays absent,
// one-sided keeps the reported value, both sides keep the minimum.
func minPtr(a, b *float64) *float64 {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case *a < *b:
		return a
	default:
		return b
	}
}

func parse(doc *Doc, sc *bufio.Scanner) (int, error) {
	pkg := ""
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			name := procSufRe.ReplaceAllString(m[1], "")
			key := name
			if pkg != "" {
				key = pkg + "/" + name
			}
			iters, _ := strconv.Atoi(m[2])
			ns, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return lines, fmt.Errorf("bad ns/op in %q: %v", line, err)
			}
			r := Result{Iterations: iters, NsPerOp: ns}
			for _, extra := range [...]struct {
				unit string
				dst  **float64
			}{
				{"MB/s", &r.MBPerS},
				{"B/op", &r.BytesPerOp},
				{"allocs/op", &r.AllocsPerOp},
			} {
				re := regexp.MustCompile(`([\d.]+) ` + regexp.QuoteMeta(extra.unit))
				if em := re.FindStringSubmatch(m[4]); em != nil {
					v, _ := strconv.ParseFloat(em[1], 64)
					*extra.dst = &v
				}
			}
			if prev, ok := doc.Benchmarks[key]; ok {
				if prev.NsPerOp < r.NsPerOp {
					r.Iterations, r.NsPerOp = prev.Iterations, prev.NsPerOp
				}
				r.MBPerS = minPtr(prev.MBPerS, r.MBPerS)
				r.BytesPerOp = minPtr(prev.BytesPerOp, r.BytesPerOp)
				r.AllocsPerOp = minPtr(prev.AllocsPerOp, r.AllocsPerOp)
			}
			doc.Benchmarks[key] = r
			lines++
		}
	}
	return lines, sc.Err()
}

func main() {
	out := flag.String("o", "BENCH.json", "output path ('-' for stdout)")
	flag.Parse()

	doc := Doc{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n, err := parse(&doc, sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}
