// Command servesmoke is the CI smoke test for the online inference
// service (wired into scripts/check.sh / make check). It exercises the
// real binaries end to end:
//
//  1. trains a tiny model in-process and writes the envelope artifact,
//  2. builds and starts cmd/serve on an ephemeral port,
//  3. waits for readiness, POSTs a matrix as JSON and as Matrix
//     Market, and checks a valid format comes back,
//  4. checks the repeated request is answered from the cache and that
//     the hit is visible in /metrics, that the -admin-addr listener
//     serves /metrics, /debug/pprof/ and /debug/traces, and that
//     -feedback-dir makes every prediction append to the crash-safe
//     feedback log, visible as feedback_* series in /metrics,
//  5. overwrites the model file and waits for the hot-reload
//     generation bump, then SIGHUPs the server and requires the
//     operator-driven reload to bump the generation again,
//  6. runs cmd/predict in -server client mode against the live server,
//  7. checks cmd/predict -fallback exits non-zero when the model fails
//     to load while still printing the CSR baseline,
//  8. runs the degraded-mode drill: a second server loses its model
//     artifact, repeated SIGHUP reloads are rejected and trip the
//     circuit breaker, and the decision-tree rung keeps answering
//     (rung visible in the response and /metrics),
//  9. SIGTERMs the servers and requires clean drains.
//
// It exits 0 only if every step passes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/selector"
	"repro/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	model := filepath.Join(dir, "model.gob")
	mtx := filepath.Join(dir, "example.mtx")

	// 1. Tiny but real training run (the full Figure 3 pipeline at toy
	// scale), saved through the checksummed envelope writer.
	step("training tiny model")
	res, err := core.Train(core.Options{
		Count: 40, MaxN: 96, Epochs: 2, RepSize: 16, RepBins: 8, Seed: 11,
	})
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	if err := res.Selector.SaveFile(model); err != nil {
		return err
	}

	// An example matrix for the client-mode checks.
	m := sparse.MustCOO(12, 12, diagEntries(12))
	var mb bytes.Buffer
	if err := sparse.WriteMatrixMarket(&mb, m); err != nil {
		return err
	}
	if err := os.WriteFile(mtx, mb.Bytes(), 0o644); err != nil {
		return err
	}

	// 2. Build and start the server.
	step("building binaries")
	serveBin := filepath.Join(dir, "serve")
	predictBin := filepath.Join(dir, "predict")
	for bin, pkg := range map[string]string{serveBin: "./cmd/serve", predictBin: "./cmd/predict"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	step("starting server")
	feedbackDir := filepath.Join(dir, "feedback")
	srv := exec.Command(serveBin, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		"-model", model, "-watch", "100ms", "-cache", "64", "-feedback-dir", feedbackDir)
	srv.Stderr = os.Stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Process.Kill()

	base, admin, err := scrapeAddrs(stdout)
	if err != nil {
		return err
	}

	// 3. Readiness, then predictions in both body encodings.
	step("waiting for readiness at " + base)
	if err := waitReady(base + "/readyz"); err != nil {
		return err
	}
	jsonBody := `{"rows":12,"cols":12,"entries":[` + jsonEntries(12) + `]}`
	format1, cached1, err := postPredict(base, "application/json", jsonBody)
	if err != nil {
		return err
	}
	if cached1 {
		return fmt.Errorf("first prediction claimed to be cached")
	}
	if _, err := sparse.ParseFormat(format1); err != nil {
		return fmt.Errorf("server returned invalid format %q", format1)
	}
	fmt.Printf("servesmoke: predicted %s\n", format1)
	if f, _, err := postPredict(base, "text/matrix-market", mb.String()); err != nil {
		return err
	} else if f != format1 {
		return fmt.Errorf("matrix-market body predicted %s, json predicted %s", f, format1)
	}

	// 4. Cache hit on the identical pattern, visible in /metrics.
	step("checking cache")
	format2, cached2, err := postPredict(base, "application/json", jsonBody)
	if err != nil {
		return err
	}
	if !cached2 || format2 != format1 {
		return fmt.Errorf("repeat request: cached=%v format=%s (want cached %s)", cached2, format2, format1)
	}
	page, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	if !regexp.MustCompile(`(?m)^serve_cache_hits_total [1-9]`).MatchString(page) {
		return fmt.Errorf("/metrics does not show cache hits")
	}

	// 4b. Admin plane: metrics, the pprof index, and the trace ring all
	// answer on the separate -admin-addr listener.
	step("checking admin endpoints at " + admin)
	page, err = get(admin + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{"serve_requests_total", "process_goroutines"} {
		if !strings.Contains(page, want) {
			return fmt.Errorf("admin /metrics missing %s", want)
		}
	}
	if page, err = get(admin + "/debug/pprof/"); err != nil || !strings.Contains(page, "goroutine") {
		return fmt.Errorf("admin /debug/pprof/ not serving profiles: %v", err)
	}
	if page, err = get(admin + "/debug/traces"); err != nil || !strings.Contains(page, `"spans"`) {
		return fmt.Errorf("admin /debug/traces has no recorded traces: %v\n%s", err, page)
	}

	// 4c. Feedback capture: the predictions above (including the cache
	// hit) must have been appended to the feedback log, and the logger's
	// series must be visible in /metrics.
	step("checking feedback capture metrics")
	if err := waitFor(10*time.Second, func() (bool, error) {
		page, err := get(base + "/metrics")
		if err != nil {
			return false, nil
		}
		return regexp.MustCompile(`(?m)^feedback_entries_total [1-9]`).MatchString(page), nil
	}); err != nil {
		return fmt.Errorf("feedback_entries_total never counted the predictions: %w", err)
	}
	page, err = get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{"feedback_entries_total", "feedback_active_bytes", "feedback_dropped_total"} {
		if !strings.Contains(page, want) {
			return fmt.Errorf("/metrics missing feedback series %s", want)
		}
	}

	// 5. Hot reload: overwrite the model file, watch the generation.
	step("checking hot reload")
	if err := res.Selector.SaveFile(model); err != nil {
		return err
	}
	if err := waitFor(10*time.Second, func() (bool, error) {
		page, err := get(base + "/metrics")
		if err != nil {
			return false, nil // server may be mid-poll; retry
		}
		return strings.Contains(page, "serve_model_generation 2"), nil
	}); err != nil {
		return fmt.Errorf("model overwrite was never hot-reloaded: %w", err)
	}

	// 5b. Operator-driven reload: SIGHUP must force a reload of the
	// (unchanged) artifact and bump the generation counter again.
	step("checking SIGHUP hot reload")
	if err := srv.Process.Signal(syscall.SIGHUP); err != nil {
		return err
	}
	if err := waitFor(10*time.Second, func() (bool, error) {
		page, err := get(base + "/metrics")
		if err != nil {
			return false, nil
		}
		return strings.Contains(page, "serve_model_generation 3"), nil
	}); err != nil {
		return fmt.Errorf("SIGHUP never bumped the model generation: %w", err)
	}

	// 6. Thin-client mode against the live server.
	step("checking predict -server client mode")
	out, err := exec.Command(predictBin, "-server", base, mtx).CombinedOutput()
	if err != nil {
		return fmt.Errorf("predict -server: %v\n%s", err, out)
	}
	clientFormat := strings.Fields(string(out))[0]
	if _, err := sparse.ParseFormat(clientFormat); err != nil {
		return fmt.Errorf("predict -server printed %q", clientFormat)
	}

	// 7. Fallback masking fix: a missing model must fail the exit code
	// even though -fallback prints the CSR baseline.
	step("checking predict -fallback exit code on missing model")
	cmd := exec.Command(predictBin, "-model", filepath.Join(dir, "missing.gob"), "-fallback", mtx)
	out, err = cmd.CombinedOutput()
	if err == nil {
		return fmt.Errorf("predict -fallback with a missing model exited 0\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		return fmt.Errorf("predict -fallback: %v, want exit code 1\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), selector.FallbackFormat.String()) {
		return fmt.Errorf("predict -fallback did not print the baseline:\n%s", out)
	}

	// 8. Degraded-mode drill: a second server loses its model artifact.
	// Each SIGHUP reload is rejected (the file is gone), consecutive
	// rejections trip the breaker, and the decision-tree rung answers —
	// the cooldown is long enough that no half-open probe can sneak the
	// CNN back mid-assertion.
	step("degraded-mode drill: killing the model artifact")
	model2 := filepath.Join(dir, "model2.gob")
	if err := res.Selector.SaveFile(model2); err != nil {
		return err
	}
	srv2 := exec.Command(serveBin, "-addr", "127.0.0.1:0", "-model", model2,
		"-watch", "0", "-cache", "0", "-breaker-threshold", "3", "-breaker-cooldown", "5m")
	srv2.Stderr = os.Stderr
	stdout2, err := srv2.StdoutPipe()
	if err != nil {
		return err
	}
	if err := srv2.Start(); err != nil {
		return err
	}
	defer srv2.Process.Kill()
	base2, err := scrapeAddr(stdout2)
	if err != nil {
		return err
	}
	if err := waitReady(base2 + "/readyz"); err != nil {
		return err
	}
	r, err := postPredictFull(base2, "application/json", jsonBody)
	if err != nil {
		return err
	}
	if r.Rung != "cnn" || r.FellBack {
		return fmt.Errorf("healthy drill server answered rung=%q fell_back=%v, want cnn", r.Rung, r.FellBack)
	}
	if err := os.Remove(model2); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if err := srv2.Process.Signal(syscall.SIGHUP); err != nil {
			return err
		}
		want := fmt.Sprintf("serve_model_reload_failures_total %d", i+1)
		if err := waitFor(10*time.Second, func() (bool, error) {
			page, err := get(base2 + "/metrics")
			if err != nil {
				return false, nil
			}
			return strings.Contains(page, want), nil
		}); err != nil {
			return fmt.Errorf("reload failure %d never surfaced in /metrics: %w", i+1, err)
		}
	}
	r, err = postPredictFull(base2, "application/json", jsonBody)
	if err != nil {
		return err
	}
	if r.Rung != "dtree" || !r.FellBack {
		return fmt.Errorf("degraded server answered rung=%q fell_back=%v, want dtree fallback", r.Rung, r.FellBack)
	}
	fmt.Printf("servesmoke: degraded prediction %s from rung %s\n", r.Format, r.Rung)
	page, err = get(base2 + "/metrics")
	if err != nil {
		return err
	}
	if !regexp.MustCompile(`(?m)^serve_rung_total\{rung="dtree"\} [1-9]`).MatchString(page) {
		return fmt.Errorf("/metrics does not count the dtree rung:\n%s", page)
	}
	if !strings.Contains(page, "serve_breaker_state 1") {
		return fmt.Errorf("/metrics does not show the breaker open")
	}

	// 9. Graceful drains on SIGTERM.
	step("checking graceful shutdown")
	for name, proc := range map[string]*exec.Cmd{"server": srv, "drill server": srv2} {
		if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() { done <- proc.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("%s exited uncleanly after SIGTERM: %v", name, err)
			}
		case <-time.After(15 * time.Second):
			return fmt.Errorf("%s did not drain within 15s of SIGTERM", name)
		}
	}
	return nil
}

func step(msg string) { fmt.Println("servesmoke:", msg) }

func diagEntries(n int) []sparse.Entry {
	var es []sparse.Entry
	for i := 0; i < n; i++ {
		es = append(es, sparse.Entry{Row: i, Col: i, Val: 2})
		if i+1 < n {
			es = append(es, sparse.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	return es
}

func jsonEntries(n int) string {
	var parts []string
	for _, e := range diagEntries(n) {
		parts = append(parts, fmt.Sprintf("[%d,%d,%g]", e.Row, e.Col, e.Val))
	}
	return strings.Join(parts, ",")
}

// scrapeAddrs reads the server's listen announcements. The admin line
// ("serve: admin listening on ...") is printed before the serving line
// ("serve: listening on ..."); admin is empty when -admin-addr is off.
func scrapeAddrs(r io.Reader) (base, admin string, err error) {
	sc := bufio.NewScanner(r)
	mainRe := regexp.MustCompile(`serve: listening on (http://\S+)`)
	adminRe := regexp.MustCompile(`serve: admin listening on (http://\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	for sc.Scan() {
		if m := adminRe.FindStringSubmatch(sc.Text()); m != nil {
			admin = m[1]
			continue
		}
		if m := mainRe.FindStringSubmatch(sc.Text()); m != nil {
			// Keep draining stdout so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return m[1], admin, nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return "", "", fmt.Errorf("server never printed its listen address")
}

// scrapeAddr is scrapeAddrs for servers started without -admin-addr.
func scrapeAddr(r io.Reader) (string, error) {
	base, _, err := scrapeAddrs(r)
	return base, err
}

func waitReady(url string) error {
	return waitFor(15*time.Second, func() (bool, error) {
		resp, err := http.Get(url)
		if err != nil {
			return false, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK, nil
	})
}

func waitFor(limit time.Duration, cond func() (bool, error)) error {
	deadline := time.Now().Add(limit)
	for {
		ok, err := cond()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", limit)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// predictResult is the subset of the predict response the smoke needs.
type predictResult struct {
	Format   string `json:"format"`
	FellBack bool   `json:"fell_back"`
	Reason   string `json:"reason"`
	Cached   bool   `json:"cached"`
	Rung     string `json:"rung"`
}

// postPredictFull sends one prediction request, expecting 200.
func postPredictFull(base, contentType, body string) (predictResult, error) {
	var r predictResult
	resp, err := http.Post(base+"/v1/predict", contentType, strings.NewReader(body))
	if err != nil {
		return r, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return r, fmt.Errorf("predict returned %s: %s", resp.Status, data)
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bad response %q: %v", data, err)
	}
	return r, nil
}

// postPredict is postPredictFull for steps that require a healthy
// (non-fallback) answer: it returns (format, cached).
func postPredict(base, contentType, body string) (string, bool, error) {
	r, err := postPredictFull(base, contentType, body)
	if err != nil {
		return "", false, err
	}
	if r.FellBack {
		return "", false, fmt.Errorf("prediction fell back: %s", r.Reason)
	}
	return r.Format, r.Cached, nil
}
