// Command servesmoke is the CI smoke test for the online inference
// service (wired into scripts/check.sh / make check). It exercises the
// real binaries end to end:
//
//  1. trains a tiny model in-process and writes the envelope artifact,
//  2. builds and starts cmd/serve on an ephemeral port,
//  3. waits for readiness, POSTs a matrix as JSON and as Matrix
//     Market, and checks a valid format comes back,
//  4. checks the repeated request is answered from the cache and that
//     the hit is visible in /metrics,
//  5. overwrites the model file and waits for the hot-reload
//     generation bump,
//  6. runs cmd/predict in -server client mode against the live server,
//  7. checks cmd/predict -fallback exits non-zero when the model fails
//     to load while still printing the CSR baseline,
//  8. SIGTERMs the server and requires a clean drain.
//
// It exits 0 only if every step passes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/selector"
	"repro/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	model := filepath.Join(dir, "model.gob")
	mtx := filepath.Join(dir, "example.mtx")

	// 1. Tiny but real training run (the full Figure 3 pipeline at toy
	// scale), saved through the checksummed envelope writer.
	step("training tiny model")
	res, err := core.Train(core.Options{
		Count: 40, MaxN: 96, Epochs: 2, RepSize: 16, RepBins: 8, Seed: 11,
	})
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	if err := res.Selector.SaveFile(model); err != nil {
		return err
	}

	// An example matrix for the client-mode checks.
	m := sparse.MustCOO(12, 12, diagEntries(12))
	var mb bytes.Buffer
	if err := sparse.WriteMatrixMarket(&mb, m); err != nil {
		return err
	}
	if err := os.WriteFile(mtx, mb.Bytes(), 0o644); err != nil {
		return err
	}

	// 2. Build and start the server.
	step("building binaries")
	serveBin := filepath.Join(dir, "serve")
	predictBin := filepath.Join(dir, "predict")
	for bin, pkg := range map[string]string{serveBin: "./cmd/serve", predictBin: "./cmd/predict"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	step("starting server")
	srv := exec.Command(serveBin, "-addr", "127.0.0.1:0", "-model", model, "-watch", "100ms", "-cache", "64")
	srv.Stderr = os.Stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Process.Kill()

	base, err := scrapeAddr(stdout)
	if err != nil {
		return err
	}

	// 3. Readiness, then predictions in both body encodings.
	step("waiting for readiness at " + base)
	if err := waitReady(base + "/readyz"); err != nil {
		return err
	}
	jsonBody := `{"rows":12,"cols":12,"entries":[` + jsonEntries(12) + `]}`
	format1, cached1, err := postPredict(base, "application/json", jsonBody)
	if err != nil {
		return err
	}
	if cached1 {
		return fmt.Errorf("first prediction claimed to be cached")
	}
	if _, err := sparse.ParseFormat(format1); err != nil {
		return fmt.Errorf("server returned invalid format %q", format1)
	}
	fmt.Printf("servesmoke: predicted %s\n", format1)
	if f, _, err := postPredict(base, "text/matrix-market", mb.String()); err != nil {
		return err
	} else if f != format1 {
		return fmt.Errorf("matrix-market body predicted %s, json predicted %s", f, format1)
	}

	// 4. Cache hit on the identical pattern, visible in /metrics.
	step("checking cache")
	format2, cached2, err := postPredict(base, "application/json", jsonBody)
	if err != nil {
		return err
	}
	if !cached2 || format2 != format1 {
		return fmt.Errorf("repeat request: cached=%v format=%s (want cached %s)", cached2, format2, format1)
	}
	page, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	if !regexp.MustCompile(`(?m)^serve_cache_hits_total [1-9]`).MatchString(page) {
		return fmt.Errorf("/metrics does not show cache hits")
	}

	// 5. Hot reload: overwrite the model file, watch the generation.
	step("checking hot reload")
	if err := res.Selector.SaveFile(model); err != nil {
		return err
	}
	if err := waitFor(10*time.Second, func() (bool, error) {
		page, err := get(base + "/metrics")
		if err != nil {
			return false, nil // server may be mid-poll; retry
		}
		return strings.Contains(page, "serve_model_generation 2"), nil
	}); err != nil {
		return fmt.Errorf("model overwrite was never hot-reloaded: %w", err)
	}

	// 6. Thin-client mode against the live server.
	step("checking predict -server client mode")
	out, err := exec.Command(predictBin, "-server", base, mtx).CombinedOutput()
	if err != nil {
		return fmt.Errorf("predict -server: %v\n%s", err, out)
	}
	clientFormat := strings.Fields(string(out))[0]
	if _, err := sparse.ParseFormat(clientFormat); err != nil {
		return fmt.Errorf("predict -server printed %q", clientFormat)
	}

	// 7. Fallback masking fix: a missing model must fail the exit code
	// even though -fallback prints the CSR baseline.
	step("checking predict -fallback exit code on missing model")
	cmd := exec.Command(predictBin, "-model", filepath.Join(dir, "missing.gob"), "-fallback", mtx)
	out, err = cmd.CombinedOutput()
	if err == nil {
		return fmt.Errorf("predict -fallback with a missing model exited 0\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		return fmt.Errorf("predict -fallback: %v, want exit code 1\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), selector.FallbackFormat.String()) {
		return fmt.Errorf("predict -fallback did not print the baseline:\n%s", out)
	}

	// 8. Graceful drain on SIGTERM.
	step("checking graceful shutdown")
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("server did not drain within 15s of SIGTERM")
	}
	return nil
}

func step(msg string) { fmt.Println("servesmoke:", msg) }

func diagEntries(n int) []sparse.Entry {
	var es []sparse.Entry
	for i := 0; i < n; i++ {
		es = append(es, sparse.Entry{Row: i, Col: i, Val: 2})
		if i+1 < n {
			es = append(es, sparse.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	return es
}

func jsonEntries(n int) string {
	var parts []string
	for _, e := range diagEntries(n) {
		parts = append(parts, fmt.Sprintf("[%d,%d,%g]", e.Row, e.Col, e.Val))
	}
	return strings.Join(parts, ",")
}

// scrapeAddr reads the server's "listening on http://..." line.
func scrapeAddr(r io.Reader) (string, error) {
	sc := bufio.NewScanner(r)
	re := regexp.MustCompile(`listening on (http://\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			// Keep draining stdout so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return m[1], nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return "", fmt.Errorf("server never printed its listen address")
}

func waitReady(url string) error {
	return waitFor(15*time.Second, func() (bool, error) {
		resp, err := http.Get(url)
		if err != nil {
			return false, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK, nil
	})
}

func waitFor(limit time.Duration, cond func() (bool, error)) error {
	deadline := time.Now().Add(limit)
	for {
		ok, err := cond()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", limit)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// postPredict sends one prediction request and returns (format, cached).
func postPredict(base, contentType, body string) (string, bool, error) {
	resp, err := http.Post(base+"/v1/predict", contentType, strings.NewReader(body))
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", false, fmt.Errorf("predict returned %s: %s", resp.Status, data)
	}
	var r struct {
		Format   string `json:"format"`
		FellBack bool   `json:"fell_back"`
		Reason   string `json:"reason"`
		Cached   bool   `json:"cached"`
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return "", false, fmt.Errorf("bad response %q: %v", data, err)
	}
	if r.FellBack {
		return "", false, fmt.Errorf("prediction fell back: %s", r.Reason)
	}
	return r.Format, r.Cached, nil
}
