// Command corpusdrill is the CI crash drill for the streamed corpus
// layer (wired into scripts/check.sh / make check). The in-process
// tests prove the store and ingester invariants under cooperative
// faults; this drill proves them against the real binaries:
//
//  1. fixture: a MatrixMarket tree (nested dirs, one byte-identical
//     duplicate, one malformed file) written from the synthetic
//     generators;
//  2. reference run: `gendata -import-dir` ingests it uninterrupted
//     into a sharded store, checksummed file by file;
//  3. kill run: the same ingest, slowed by the dataset.label.stall
//     fault, SIGKILLed once at least two shards have been published;
//  4. resume run: `gendata -import-dir -resume` must exit 0, pick up
//     at the journaled walk position (not start over), and produce a
//     store byte-identical to the reference — shard files, manifest
//     and dedup index alike;
//  5. corruption run: with one shard deliberately bit-flipped, both
//     `train -dataset-in <store>` and `experiments -run heldout` must
//     complete, quarantining the damaged original and writing
//     salvage.json rather than aborting.
//
// With -dir the drill artifacts (the store, salvage.json, the
// quarantine directory, the held-out report) are kept there so CI can
// upload the salvage evidence; by default a temp dir is used and
// removed.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/sparse"
	"repro/internal/synthgen"
)

func main() {
	dir := flag.String("dir", "", "keep drill artifacts in this directory (default: temp dir, removed)")
	flag.Parse()
	if err := run(*dir); err != nil {
		fmt.Fprintln(os.Stderr, "corpusdrill: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("corpusdrill: PASS")
}

func run(dir string) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "corpusdrill")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	step("building cmd/gendata, cmd/train, cmd/experiments")
	bins := map[string]string{}
	for _, name := range []string{"gendata", "train", "experiments"} {
		bin := filepath.Join(dir, name)
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput(); err != nil {
			return fmt.Errorf("go build ./cmd/%s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	step("writing the MatrixMarket fixture tree")
	src := filepath.Join(dir, "mtx")
	if err := writeFixtureTree(src); err != nil {
		return err
	}

	common := []string{"-import-dir", src, "-shard-size", "4", "-seed", "7"}

	// 2. Uninterrupted reference ingest — the bytes every other run
	// must reproduce.
	step("reference ingest (uninterrupted)")
	refStore := filepath.Join(dir, "ref.store")
	out, err := runCmd(bins["gendata"], nil, append(common, "-store", refStore)...)
	if err != nil {
		return fmt.Errorf("reference ingest: %v\n%s", err, out)
	}
	if !strings.Contains(out, "1 files quarantined") {
		return fmt.Errorf("the malformed fixture was not quarantined:\n%s", out)
	}
	if !strings.Contains(out, "1 dupes skipped") {
		return fmt.Errorf("the duplicate fixture was not deduped:\n%s", out)
	}

	// 3. Ingest again, slowed per file, SIGKILLed mid-run.
	step("ingest with SIGKILL after >= 2 published shards")
	liveStore := filepath.Join(dir, "live.store")
	var killOut strings.Builder
	kill := exec.Command(bins["gendata"], append(append([]string{}, common...), "-store", liveStore)...)
	kill.Stdout, kill.Stderr = &killOut, &killOut
	kill.Env = append(os.Environ(), "GENDATA_FAULT_INJECT=dataset.label.stall@40ms")
	if err := kill.Start(); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- kill.Wait() }()
	deadline := time.Now().Add(60 * time.Second)
	for {
		shards, _ := filepath.Glob(filepath.Join(liveStore, "corpus-0*.bin"))
		if len(shards) >= 2 {
			break
		}
		select {
		case err := <-exited:
			return fmt.Errorf("ingest exited (%v) before it could be killed; increase the stall delay\n%s", err, killOut.String())
		default:
		}
		if time.Now().After(deadline) {
			kill.Process.Kill()
			<-exited
			return fmt.Errorf("no shards published within 60s\n%s", killOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := kill.Process.Kill(); err != nil {
		return fmt.Errorf("kill -9: %v", err)
	}
	if err := <-exited; err == nil {
		return fmt.Errorf("killed ingest exited cleanly — the kill landed too late to mean anything")
	}
	shards, _ := filepath.Glob(filepath.Join(liveStore, "corpus-0*.bin"))
	fmt.Printf("corpusdrill: killed with %d shards published\n", len(shards))

	// 4. Resume. Must pick up at the journaled position and converge on
	// the reference bytes.
	step("resume after kill")
	out, err = runCmd(bins["gendata"], nil, append(common, "-store", liveStore, "-resume")...)
	if err != nil {
		return fmt.Errorf("resume: %v\n%s", err, out)
	}
	if !strings.Contains(out, "resuming ingest at file ") {
		return fmt.Errorf("resume started over instead of picking up the journal:\n%s", out)
	}
	if err := compareStores(refStore, liveStore); err != nil {
		return fmt.Errorf("resumed store diverged from the uninterrupted one: %v", err)
	}
	fmt.Println("corpusdrill: resumed store is byte-identical to the reference")

	// 5. Corrupt a shard, then require training and the held-out
	// evaluation to survive on salvage rather than abort.
	step("corrupting one shard, training through salvage")
	if err := flipShardByte(filepath.Join(liveStore, "corpus-00001.bin")); err != nil {
		return err
	}
	model := filepath.Join(dir, "model.gob")
	out, err = runCmd(bins["train"], nil,
		"-dataset-in", liveStore, "-out", model,
		"-epochs", "2", "-repsize", "16", "-repbins", "8", "-seed", "7")
	if err != nil {
		return fmt.Errorf("train over a corrupt store aborted: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(liveStore, "salvage.json")); err != nil {
		return fmt.Errorf("salvage report not written: %v", err)
	}
	quarantined, _ := filepath.Glob(filepath.Join(liveStore, "quarantine", "*.corrupt"))
	if len(quarantined) == 0 {
		return fmt.Errorf("corrupt shard original was not quarantined")
	}

	step("corrupting another shard, held-out evaluation through salvage")
	if err := flipShardByte(filepath.Join(liveStore, "corpus-00002.bin")); err != nil {
		return err
	}
	report := filepath.Join(dir, "heldout.json")
	out, err = runCmd(bins["experiments"], nil,
		"-run", "heldout", "-dataset", liveStore, "-model", model, "-report", report, "-seed", "7")
	if err != nil {
		return fmt.Errorf("heldout evaluation over a corrupt store aborted: %v\n%s", err, out)
	}
	var rep struct {
		Records  int     `json:"records"`
		Accuracy float64 `json:"accuracy"`
		Salvaged bool    `json:"salvaged"`
	}
	rb, err := os.ReadFile(report)
	if err != nil {
		return fmt.Errorf("held-out report: %v", err)
	}
	if err := json.Unmarshal(rb, &rep); err != nil {
		return fmt.Errorf("held-out report unparsable: %v\n%s", err, rb)
	}
	if rep.Records == 0 {
		return fmt.Errorf("held-out report evaluated zero records:\n%s", rb)
	}
	if !rep.Salvaged {
		return fmt.Errorf("held-out report does not record the salvage:\n%s", rb)
	}
	fmt.Printf("corpusdrill: held-out evaluation survived salvage (%d records, accuracy %.2f)\n",
		rep.Records, rep.Accuracy)
	return nil
}

// writeFixtureTree lays out the ingest corpus: 60 distinct matrices in
// nested directories, one byte-identical duplicate under a different
// name, and one malformed file.
func writeFixtureTree(dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, "group1"), 0o755); err != nil {
		return err
	}
	for i := 0; i < 60; i++ {
		n := 40 + i
		m := synthgen.Random(n, n, n*8, int64(i+1))
		name := fmt.Sprintf("m%03d.mtx", i)
		if i%2 == 0 {
			name = filepath.Join("group1", name)
		}
		if err := sparse.WriteMatrixMarketFile(filepath.Join(dir, name), m); err != nil {
			return err
		}
	}
	dup := synthgen.Random(43, 43, 43*8, 4)
	if err := sparse.WriteMatrixMarketFile(filepath.Join(dir, "zz_duplicate.mtx"), dup); err != nil {
		return err
	}
	bad := "%%MatrixMarket matrix coordinate real general\n9 9 4\n1 1 1.0\n2 2"
	return os.WriteFile(filepath.Join(dir, "broken.mtx"), []byte(bad), 0o644)
}

// compareStores requires byte-identical shard, manifest and dedup
// files between two store directories.
func compareStores(ref, got string) error {
	names, err := filepath.Glob(filepath.Join(ref, "corpus-0*.bin"))
	if err != nil || len(names) == 0 {
		return fmt.Errorf("no shards in %s (%v)", ref, err)
	}
	files := []string{"corpus-manifest.bin", "corpus-dedup.bin"}
	for _, n := range names {
		files = append(files, filepath.Base(n))
	}
	// A resumed store must not hold extra shards either.
	gotShards, _ := filepath.Glob(filepath.Join(got, "corpus-0*.bin"))
	if len(gotShards) != len(names) {
		return fmt.Errorf("%d shards, reference has %d", len(gotShards), len(names))
	}
	for _, name := range files {
		a, err := sha256File(filepath.Join(ref, name))
		if err != nil {
			return err
		}
		b, err := sha256File(filepath.Join(got, name))
		if err != nil {
			return err
		}
		if a != b {
			return fmt.Errorf("%s differs", name)
		}
	}
	return nil
}

// flipShardByte corrupts one byte inside a shard's payload region.
func flipShardByte(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < 64 {
		return fmt.Errorf("%s suspiciously small (%d bytes)", path, len(raw))
	}
	raw[len(raw)/2] ^= 0x20
	return os.WriteFile(path, raw, 0o644)
}

func step(s string) { fmt.Println("corpusdrill:", s) }

func runCmd(bin string, env []string, args ...string) (string, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func sha256File(path string) ([32]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}
