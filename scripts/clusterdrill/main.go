// Command clusterdrill is the replica-kill chaos drill for the cluster
// serving tier (wired into scripts/check.sh / make check and CI). It
// exercises the real binaries end to end:
//
//  1. trains a tiny model in-process and writes the envelope artifact,
//  2. builds cmd/serve, cmd/router and cmd/loadgen, starts three
//     replicas on ephemeral ports and the router in front of them,
//  3. sends a probe request through the router and picks the replica
//     that served it as the victim,
//  4. starts a heavy-tailed background load, SIGKILLs the victim
//     mid-load, and requires the run's success rate to stay >= 99% —
//     the router's breakers, retries and failover must mask the death,
//  5. requires the router to mark the victim down
//     (router_replica_state=2) and to have recorded retries/failovers,
//  6. restarts the victim on its old port and requires the router to
//     readmit it (state back to 0 via half-open probes) — the
//     reconvergence half of the drill,
//  7. snapshots the router's /metrics to -artifact (CI uploads it),
//  8. SIGTERMs everything and requires clean drains.
//
// It exits 0 only if every step passes. -short shrinks the load window
// for use in SHORT=1 check runs.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
)

var short = flag.Bool("short", false, "shrink the load window (for SHORT=1 check runs)")
var artifact = flag.String("artifact", "", "write the final router /metrics snapshot here (empty = skip)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clusterdrill: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("clusterdrill: PASS")
}

const replicaCount = 3

func run() error {
	dir, err := os.MkdirTemp("", "clusterdrill")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	model := filepath.Join(dir, "model.gob")

	step("training tiny model")
	res, err := core.Train(core.Options{
		Count: 40, MaxN: 96, Epochs: 2, RepSize: 16, RepBins: 8, Seed: 11,
	})
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	if err := res.Selector.SaveFile(model); err != nil {
		return err
	}

	step("building binaries")
	bins := map[string]string{}
	for _, name := range []string{"serve", "router", "loadgen"} {
		bin := filepath.Join(dir, name)
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput(); err != nil {
			return fmt.Errorf("go build ./cmd/%s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	startReplica := func(addr string) (*exec.Cmd, string, error) {
		cmd := exec.Command(bins["serve"], "-addr", addr, "-model", model,
			"-watch", "0", "-cache", "256", "-peer-fill-timeout", "100ms")
		cmd.Stderr = io.Discard
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, "", err
		}
		if err := cmd.Start(); err != nil {
			return nil, "", err
		}
		base, err := scrapeAddr(stdout, "serve")
		if err != nil {
			cmd.Process.Kill()
			return nil, "", err
		}
		return cmd, base, nil
	}

	step("starting replicas")
	replicas := map[string]*exec.Cmd{}
	var urls []string
	for i := 0; i < replicaCount; i++ {
		cmd, base, err := startReplica("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		defer func() { cmd.Process.Kill() }()
		replicas[base] = cmd
		urls = append(urls, base)
	}

	step("starting router in front of " + strings.Join(urls, ", "))
	router := exec.Command(bins["router"],
		"-addr", "127.0.0.1:0",
		"-replicas", strings.Join(urls, ","),
		"-probe-interval", "100ms",
		"-probe-timeout", "500ms",
		"-breaker-threshold", "2",
		"-breaker-cooldown", "300ms",
		"-half-open-probes", "2",
		"-retries", "2",
		"-backoff", "10ms",
		"-hedge-after", "250ms",
	)
	router.Stderr = os.Stderr
	rout, err := router.StdoutPipe()
	if err != nil {
		return err
	}
	if err := router.Start(); err != nil {
		return err
	}
	defer router.Process.Kill()
	routerURL, err := scrapeAddr(rout, "router")
	if err != nil {
		return err
	}

	step("waiting for router readiness at " + routerURL)
	if err := waitFor(15*time.Second, func() (bool, error) {
		code, _, _ := get(routerURL + "/readyz")
		return code == http.StatusOK, nil
	}); err != nil {
		return fmt.Errorf("router never became ready: %w", err)
	}

	// 3. Probe request: whoever serves it is (with an all-healthy ring)
	// the shard owner for this pattern — the highest-value victim.
	step("picking a victim")
	probeBody := `{"rows":10,"cols":10,"entries":[[0,0,1],[1,1,1],[2,2,1],[3,3,1],[4,4,1],[5,5,1],[6,6,1],[7,7,1],[8,8,1],[9,9,1]]}`
	hdr, code, err := postJSON(routerURL+"/v1/predict", probeBody)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("probe request: code %d err %v", code, err)
	}
	victim := hdr.Get("X-Served-By")
	if _, ok := replicas[victim]; !ok {
		return fmt.Errorf("X-Served-By %q names no replica", victim)
	}
	fmt.Printf("clusterdrill: victim is %s\n", victim)

	// 4. Background load, then a SIGKILL mid-window.
	loadDur, killAfter := 12*time.Second, 3*time.Second
	if *short {
		loadDur, killAfter = 5*time.Second, 1500*time.Millisecond
	}
	step(fmt.Sprintf("running %s of load, killing victim after %s", loadDur, killAfter))
	report := filepath.Join(dir, "loadgen.json")
	load := exec.Command(bins["loadgen"],
		"-url", routerURL,
		"-duration", loadDur.String(),
		"-concurrency", "6",
		"-matrices", "32",
		"-maxn", "192",
		"-timeout", "10s",
		"-out", report,
	)
	load.Stdout = io.Discard
	load.Stderr = os.Stderr
	if err := load.Start(); err != nil {
		return err
	}
	time.Sleep(killAfter)
	if err := replicas[victim].Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		return err
	}
	replicas[victim].Wait()
	fmt.Println("clusterdrill: victim killed")
	if err := load.Wait(); err != nil {
		return fmt.Errorf("loadgen: %v", err)
	}

	// 5. The SLO: availability through the kill.
	var rep struct {
		Requests    int64   `json:"requests"`
		SuccessRate float64 `json:"success_rate"`
		P99Ms       float64 `json:"p99_ms"`
	}
	data, err := os.ReadFile(report)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return err
	}
	fmt.Printf("clusterdrill: %d requests, success rate %.4f, p99 %.1fms\n", rep.Requests, rep.SuccessRate, rep.P99Ms)
	if rep.Requests < 50 {
		return fmt.Errorf("only %d requests flowed; the drill measured nothing", rep.Requests)
	}
	if rep.SuccessRate < 0.99 {
		return fmt.Errorf("success rate %.4f under a single replica kill, want >= 0.99", rep.SuccessRate)
	}

	// The router must have noticed: victim out of rotation, failovers
	// recorded.
	stateSeries := fmt.Sprintf("router_replica_state{replica=%q}", victim)
	if err := waitFor(10*time.Second, func() (bool, error) {
		_, page, _ := get(routerURL + "/metrics")
		return metricSample(page, stateSeries) == 2, nil
	}); err != nil {
		return fmt.Errorf("router never marked the dead victim down: %w", err)
	}
	_, page, _ := get(routerURL + "/metrics")
	if metricSum(page, "router_retries_total")+metricSample(page, "router_failovers_total") == 0 {
		return fmt.Errorf("kill drill recorded no retries or failovers:\n%s", page)
	}

	// 6. Reconvergence: restart the victim on its old port and wait for
	// the router's half-open probes to readmit it.
	step("restarting victim")
	addr := strings.TrimPrefix(victim, "http://")
	revived, base, err := startReplica(addr)
	if err != nil {
		return fmt.Errorf("restarting victim: %w", err)
	}
	defer revived.Process.Kill()
	if base != victim {
		return fmt.Errorf("revived replica bound %s, want %s", base, victim)
	}
	replicas[victim] = revived
	if err := waitFor(15*time.Second, func() (bool, error) {
		_, page, _ := get(routerURL + "/metrics")
		return metricSample(page, stateSeries) == 0, nil
	}); err != nil {
		return fmt.Errorf("router never readmitted the revived victim: %w", err)
	}
	if _, code, err := postJSONHdr(routerURL+"/v1/predict", probeBody); err != nil || code != http.StatusOK {
		return fmt.Errorf("post-recovery probe: code %d err %v", code, err)
	}
	fmt.Println("clusterdrill: victim readmitted")

	// 7. Metrics artifact for CI.
	if *artifact != "" {
		_, page, err := get(routerURL + "/metrics")
		if err != nil {
			return err
		}
		if err := os.MkdirAll(filepath.Dir(*artifact), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(*artifact, []byte(page), 0o644); err != nil {
			return err
		}
		fmt.Println("clusterdrill: wrote metrics artifact to " + *artifact)
	}

	// 8. Clean drains.
	step("checking graceful shutdown")
	procs := map[string]*exec.Cmd{"router": router}
	for url, cmd := range replicas {
		procs["replica "+url] = cmd
	}
	for name, proc := range procs {
		if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
	}
	for name, proc := range procs {
		done := make(chan error, 1)
		go func() { done <- proc.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("%s exited uncleanly after SIGTERM: %v", name, err)
			}
		case <-time.After(15 * time.Second):
			return fmt.Errorf("%s did not drain within 15s of SIGTERM", name)
		}
	}
	return nil
}

func step(msg string) { fmt.Println("clusterdrill:", msg) }

// scrapeAddr reads a child's "<name>: listening on http://..." stdout
// line, then keeps draining the pipe so the child never blocks.
func scrapeAddr(r io.Reader, name string) (string, error) {
	sc := bufio.NewScanner(r)
	re := regexp.MustCompile(name + `: listening on (http://\S+)`)
	deadline := time.Now().Add(15 * time.Second)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			go func() {
				for sc.Scan() {
				}
			}()
			return m[1], nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return "", fmt.Errorf("%s never printed its listen address", name)
}

func waitFor(limit time.Duration, cond func() (bool, error)) error {
	deadline := time.Now().Add(limit)
	for {
		ok, err := cond()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", limit)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func get(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), err
}

func postJSON(url, body string) (http.Header, int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.Header, resp.StatusCode, nil
}

func postJSONHdr(url, body string) (http.Header, int, error) { return postJSON(url, body) }

// metricSample extracts one sample value from a Prometheus text page
// (labeled series: pass the fully rendered series name).
func metricSample(page, series string) float64 {
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, series+" "), "%g", &v)
			return v
		}
	}
	return 0
}

// metricSum totals every series of a labeled metric family.
func metricSum(page, name string) float64 {
	var total float64
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		if i := strings.LastIndex(line, " "); i >= 0 {
			var v float64
			fmt.Sscanf(line[i+1:], "%g", &v)
			total += v
		}
	}
	return total
}
