// Command overloaddrill is the overload-control drill for the serving
// tier (wired into scripts/check.sh / make check and CI). Where
// clusterdrill proves the cluster survives a replica death, this drill
// proves it survives its own clients: an open-loop surge at several
// times capacity must degrade into shed load and brownout, never into
// congestion collapse. It exercises the real binaries end to end:
//
//  1. trains a tiny model in-process and writes the envelope artifact,
//  2. builds cmd/serve, cmd/router and cmd/loadgen; starts two
//     replicas — each with an SLO target (-slo-target-p99), no cache
//     (every request pays for compute) and an injected CNN delay
//     (SERVE_FAULT_INJECT=serve.predict.slow) so capacity is low and
//     known — and the router in front with a retry budget,
//  3. measures baseline capacity with a short closed-loop run,
//  4. fires an open-loop Poisson surge at 5x that capacity and
//     requires: goodput stays >= 70% of capacity (no collapse), zero
//     5xx (overload answers are 429 sheds, never errors), and the
//     brownout controller engaged on at least one replica
//     (serve_brownout_transitions_total{to="engaged"} with dtree-rung
//     answers recorded),
//  5. after the surge, requires recovery within 10s: brownout
//     disengages everywhere (serve_brownout_state back to 0) and a
//     light closed-loop run's p99 lands back inside the SLO,
//  6. writes a JSON goodput/latency artifact for CI, and
//  7. SIGTERMs everything and requires clean drains.
//
// It exits 0 only if every step passes. -short shrinks the load
// windows for use in SHORT=1 check runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
)

var short = flag.Bool("short", false, "shrink the load windows (for SHORT=1 check runs)")
var artifact = flag.String("artifact", "", "write the JSON goodput/latency summary here (empty = skip)")

const (
	replicaCount = 2
	sloTarget    = 500 * time.Millisecond
	// cnnDelay makes the CNN rung the unambiguous bottleneck
	// (~workers/delay req/s per replica). It must be slow enough that a
	// surge at surgeFactor times capacity still fits in the drill host's
	// own CPU — loadgen, the router (which parses every body to route
	// it) and both replicas share the machine, and on a small runner a
	// too-fast baseline turns the drill into a host-CPU benchmark where
	// everything, sheds included, answers in seconds.
	cnnDelay    = 100 * time.Millisecond
	surgeFactor = 5.0
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overloaddrill: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("overloaddrill: PASS")
}

// loadReport is the slice of cmd/loadgen's JSON report the drill reads.
type loadReport struct {
	Requests      int64          `json:"requests"`
	Success       int64          `json:"success"`
	InSLO         int64          `json:"in_slo"`
	TransportErrs int64          `json:"transport_errors"`
	Codes         map[string]int `json:"codes"`
	SuccessRate   float64        `json:"success_rate"`
	P99Ms         float64        `json:"p99_ms"`
	ThroughputRPS float64        `json:"throughput_rps"`
	OfferedRPS    float64        `json:"offered_rps"`
	GoodputRPS    float64        `json:"goodput_rps"`
}

func run() error {
	dir, err := os.MkdirTemp("", "overloaddrill")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	model := filepath.Join(dir, "model.gob")

	step("training tiny model")
	res, err := core.Train(core.Options{
		Count: 40, MaxN: 96, Epochs: 2, RepSize: 16, RepBins: 8, Seed: 11,
	})
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	if err := res.Selector.SaveFile(model); err != nil {
		return err
	}

	step("building binaries")
	bins := map[string]string{}
	for _, name := range []string{"serve", "router", "loadgen"} {
		bin := filepath.Join(dir, name)
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput(); err != nil {
			return fmt.Errorf("go build ./cmd/%s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	// Replicas: SLO-armed, cache off (every request computes, so offered
	// load is real load), 2 workers and an injected per-inference CNN
	// delay — capacity is ~workers/delay per replica, low enough to
	// overwhelm cheaply and precisely.
	step("starting replicas")
	replicas := map[string]*exec.Cmd{}
	var urls []string
	for i := 0; i < replicaCount; i++ {
		cmd := exec.Command(bins["serve"],
			"-addr", "127.0.0.1:0",
			"-model", model,
			"-watch", "0",
			"-cache", "0",
			"-workers", "2",
			"-batch", "2",
			"-slo-target-p99", sloTarget.String(),
			"-predict-timeout", "2s",
			"-request-timeout", "10s",
		)
		cmd.Env = append(os.Environ(), "SERVE_FAULT_INJECT=serve.predict.slow@"+cnnDelay.String())
		cmd.Stderr = io.Discard
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		base, err := scrapeAddr(stdout, "serve")
		if err != nil {
			cmd.Process.Kill()
			return fmt.Errorf("replica %d: %w", i, err)
		}
		defer func() { cmd.Process.Kill() }()
		replicas[base] = cmd
		urls = append(urls, base)
	}

	step("starting router in front of " + strings.Join(urls, ", "))
	router := exec.Command(bins["router"],
		"-addr", "127.0.0.1:0",
		"-replicas", strings.Join(urls, ","),
		"-probe-interval", "100ms",
		"-probe-timeout", "500ms",
		"-retries", "2",
		"-backoff", "10ms",
		"-request-timeout", "10s",
		"-retry-budget-ratio", "0.1",
		"-retry-budget-burst", "10",
	)
	router.Stderr = os.Stderr
	rout, err := router.StdoutPipe()
	if err != nil {
		return err
	}
	if err := router.Start(); err != nil {
		return err
	}
	defer router.Process.Kill()
	routerURL, err := scrapeAddr(rout, "router")
	if err != nil {
		return err
	}

	step("waiting for router readiness at " + routerURL)
	if err := waitFor(15*time.Second, func() (bool, error) {
		code, _, _ := get(routerURL + "/readyz")
		return code == http.StatusOK, nil
	}); err != nil {
		return fmt.Errorf("router never became ready: %w", err)
	}

	// 3. Baseline capacity: a short closed loop at modest concurrency.
	// Closed-loop is the right tool HERE — it cannot overload, so its
	// throughput approximates sustainable capacity.
	capacityDur, surgeDur, recoveryDur := 4*time.Second, 10*time.Second, 6*time.Second
	if *short {
		capacityDur, surgeDur, recoveryDur = 3*time.Second, 6*time.Second, 5*time.Second
	}
	step(fmt.Sprintf("measuring capacity (closed loop, %s)", capacityDur))
	baseline, err := runLoadgen(bins["loadgen"], dir, "baseline",
		"-url", routerURL,
		"-arrival", "closed",
		"-duration", capacityDur.String(),
		"-concurrency", "6",
		"-matrices", "16",
		"-maxn", "64",
		"-slo", sloTarget.String(),
		"-timeout", "10s",
	)
	if err != nil {
		return err
	}
	capacity := baseline.ThroughputRPS
	fmt.Printf("overloaddrill: capacity ~%.0f req/s (baseline p99 %.1fms)\n", capacity, baseline.P99Ms)
	if capacity < 20 {
		return fmt.Errorf("capacity %.1f req/s is implausibly low; the drill cannot size a surge", capacity)
	}

	// The baseline can brush the SLO hard enough to engage brownout on
	// its own; start the surge from a clean slate so the engagement
	// asserted below is unambiguously the surge's doing.
	if err := awaitBrownoutClear(urls, 15*time.Second); err != nil {
		return fmt.Errorf("brownout still engaged after the baseline run: %w", err)
	}
	engagedBefore := map[string]float64{}
	for _, u := range urls {
		_, page, err := get(u + "/metrics")
		if err != nil {
			return fmt.Errorf("scraping replica %s: %w", u, err)
		}
		engagedBefore[u] = metricSample(page, `serve_brownout_transitions_total{to="engaged"}`)
	}

	// 4. The surge: open-loop Poisson at 5x capacity. Offered load does
	// not care how the server is doing — that is the point.
	surgeRate := capacity * surgeFactor
	step(fmt.Sprintf("surging at %.0f req/s (%.0fx capacity, open loop, %s)", surgeRate, surgeFactor, surgeDur))
	surge, err := runLoadgen(bins["loadgen"], dir, "surge",
		"-url", routerURL,
		"-arrival", "poisson",
		"-rate", fmt.Sprintf("%f", surgeRate),
		"-duration", surgeDur.String(),
		"-matrices", "16",
		"-maxn", "64",
		"-slo", sloTarget.String(),
		"-timeout", "10s",
	)
	if err != nil {
		return err
	}
	surgeEnd := time.Now()
	fmt.Printf("overloaddrill: surge offered %.0f req/s, goodput %.0f req/s, codes %v\n",
		surge.OfferedRPS, surge.GoodputRPS, surge.Codes)

	// No congestion collapse: goodput under 5x overload must hold at
	// 70%+ of capacity — shed the excess, keep serving the rest.
	if surge.GoodputRPS < 0.7*capacity {
		return fmt.Errorf("goodput collapsed under surge: %.1f req/s, want >= 70%% of %.1f req/s capacity", surge.GoodputRPS, capacity)
	}
	// Overload must answer with sheds (429), never with server errors.
	for code, count := range surge.Codes {
		if strings.HasPrefix(code, "5") && count > 0 {
			return fmt.Errorf("surge produced %d %s answers; overload must shed, not error (codes %v)", count, code, surge.Codes)
		}
	}

	// Brownout engaged somewhere: sustained SLO burn must have stepped
	// at least one replica down to the dtree rung proactively. Engagement
	// is counted as a delta across the surge so a baseline-era episode
	// cannot satisfy it.
	engaged, dtreeAnswers := 0, 0.0
	for _, u := range urls {
		_, page, err := get(u + "/metrics")
		if err != nil {
			return fmt.Errorf("scraping replica %s: %w", u, err)
		}
		if metricSample(page, `serve_brownout_transitions_total{to="engaged"}`) > engagedBefore[u] {
			engaged++
		}
		dtreeAnswers += metricSample(page, `serve_rung_total{rung="dtree"}`)
	}
	if engaged == 0 {
		return fmt.Errorf("no replica's brownout controller engaged under a %.0fx surge", surgeFactor)
	}
	if dtreeAnswers == 0 {
		return fmt.Errorf("brownout engaged but no dtree-rung answers were recorded")
	}
	fmt.Printf("overloaddrill: brownout engaged on %d/%d replicas, %d dtree answers\n", engaged, len(urls), int(dtreeAnswers))

	// 5. Recovery: light open-loop traffic after the surge — open loop
	// at a rate well under CNN capacity, because a closed loop against
	// the fast browned-out rung would keep offered load high and the
	// controller would (correctly) refuse to step back up. Brownout must
	// disengage on every replica and p99 must land back inside the SLO,
	// all within 10s of the load dropping.
	step("checking post-surge recovery")
	recovery, err := runLoadgen(bins["loadgen"], dir, "recovery",
		"-url", routerURL,
		"-arrival", "poisson",
		"-rate", fmt.Sprintf("%f", 0.3*capacity),
		"-duration", recoveryDur.String(),
		"-matrices", "16",
		"-maxn", "64",
		"-slo", sloTarget.String(),
		"-timeout", "10s",
	)
	if err != nil {
		return err
	}
	if err := awaitBrownoutClear(urls, 10*time.Second-time.Since(surgeEnd)); err != nil {
		return fmt.Errorf("brownout never disengaged after the surge: %w", err)
	}
	if recovery.SuccessRate < 0.95 {
		return fmt.Errorf("post-surge success rate %.4f, want >= 0.95", recovery.SuccessRate)
	}
	sloMs := float64(sloTarget.Milliseconds())
	if recovery.P99Ms > sloMs {
		return fmt.Errorf("post-surge p99 %.1fms still outside the %.0fms SLO", recovery.P99Ms, sloMs)
	}
	fmt.Printf("overloaddrill: recovered (p99 %.1fms, success rate %.4f)\n", recovery.P99Ms, recovery.SuccessRate)

	// 6. Goodput/latency artifact for CI.
	if *artifact != "" {
		summary := map[string]any{
			"capacity_rps":      capacity,
			"baseline_p99_ms":   baseline.P99Ms,
			"surge_factor":      surgeFactor,
			"surge_offered_rps": surge.OfferedRPS,
			"surge_goodput_rps": surge.GoodputRPS,
			"surge_codes":       surge.Codes,
			"recovery_p99_ms":   recovery.P99Ms,
			"brownout_engaged":  engaged,
			"dtree_answers":     dtreeAnswers,
		}
		data, _ := json.MarshalIndent(summary, "", "  ")
		if err := os.MkdirAll(filepath.Dir(*artifact), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(*artifact, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("overloaddrill: wrote goodput artifact to " + *artifact)
	}

	// 7. Clean drains.
	step("checking graceful shutdown")
	procs := map[string]*exec.Cmd{"router": router}
	for url, cmd := range replicas {
		procs["replica "+url] = cmd
	}
	for name, proc := range procs {
		if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
	}
	for name, proc := range procs {
		done := make(chan error, 1)
		go func() { done <- proc.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("%s exited uncleanly after SIGTERM: %v", name, err)
			}
		case <-time.After(15 * time.Second):
			return fmt.Errorf("%s did not drain within 15s of SIGTERM", name)
		}
	}
	return nil
}

// runLoadgen runs one loadgen pass and parses its JSON report.
func runLoadgen(bin, dir, name string, args ...string) (*loadReport, error) {
	report := filepath.Join(dir, name+".json")
	cmd := exec.Command(bin, append(args, "-out", report)...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loadgen (%s): %v", name, err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		return nil, err
	}
	var rep loadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("loadgen (%s) report: %w", name, err)
	}
	if rep.Requests == 0 {
		return nil, fmt.Errorf("loadgen (%s) sent no requests", name)
	}
	return &rep, nil
}

func step(msg string) { fmt.Println("overloaddrill:", msg) }

// awaitBrownoutClear polls every replica until serve_brownout_state is
// 0 everywhere. Engaged replicas are nudged with a tiny predict:
// brownout evaluation is traffic-driven, so a replica gone quiet never
// closes the cool intervals that would step it back up.
func awaitBrownoutClear(urls []string, limit time.Duration) error {
	const probeBody = `{"rows":10,"cols":10,"entries":[[0,0,1],[1,1,1],[2,2,1],[3,3,1],[4,4,1],[5,5,1],[6,6,1],[7,7,1],[8,8,1],[9,9,1]]}`
	return waitFor(limit, func() (bool, error) {
		clear := true
		for _, u := range urls {
			_, page, err := get(u + "/metrics")
			if err != nil {
				return false, nil
			}
			if metricSample(page, "serve_brownout_state") != 0 {
				clear = false
				http.Post(u+"/v1/predict", "application/json", strings.NewReader(probeBody))
			}
		}
		return clear, nil
	})
}

// scrapeAddr reads a child's "<name>: listening on http://..." stdout
// line, then keeps draining the pipe so the child never blocks.
func scrapeAddr(r io.Reader, name string) (string, error) {
	sc := bufio.NewScanner(r)
	re := regexp.MustCompile(name + `: listening on (http://\S+)`)
	deadline := time.Now().Add(15 * time.Second)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			go func() {
				for sc.Scan() {
				}
			}()
			return m[1], nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return "", fmt.Errorf("%s never printed its listen address", name)
}

func waitFor(limit time.Duration, cond func() (bool, error)) error {
	if limit < time.Second {
		limit = time.Second
	}
	deadline := time.Now().Add(limit)
	for {
		ok, err := cond()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", limit)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func get(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), err
}

// metricSample extracts one sample value from a Prometheus text page
// (labeled series: pass the fully rendered series name).
func metricSample(page, series string) float64 {
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, series+" "), "%g", &v)
			return v
		}
	}
	return 0
}
