// Command gendrill is the CI crash drill for the corpus builder
// (wired into scripts/check.sh / make check). The in-process chaos
// suite (internal/dataset/chaos_test.go) proves the journal invariants
// under cooperative cancellation; this drill proves them against the
// real cmd/gendata binary with a real SIGKILL:
//
//  1. reference run: an uninterrupted build with a fixed seed,
//     checksummed;
//  2. kill run: the same build, journaled and slowed by the
//     dataset.label.stall fault, SIGKILLed once at least two shards
//     have landed on disk;
//  3. resume run: `gendata -resume` must exit 0, reuse the journaled
//     shards (not silently start over), and produce a dataset whose
//     sha256 matches the reference byte for byte;
//  4. quarantine run: with dataset.label.panic armed the build must
//     still complete, report the poisoned matrices, and persist their
//     specs + errors to quarantine.jsonl for offline forensics.
//
// With -dir the drill artifacts (journals, quarantine.jsonl,
// report.jsonl) are kept there so CI can upload the quarantine report;
// by default a temp dir is used and removed.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

func main() {
	dir := flag.String("dir", "", "keep drill artifacts in this directory (default: temp dir, removed)")
	flag.Parse()
	if err := run(*dir); err != nil {
		fmt.Fprintln(os.Stderr, "gendrill: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("gendrill: PASS")
}

func run(dir string) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gendrill")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	step("building cmd/gendata")
	bin := filepath.Join(dir, "gendata")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/gendata").CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}

	// One fixed build shape for every run: small enough for CI, sharded
	// finely enough that a kill leaves real resume work behind.
	common := []string{"-count", "240", "-maxn", "160", "-seed", "7", "-shard-size", "8", "-quiet"}
	journal := filepath.Join(dir, "journal")

	// 1. Uninterrupted reference build — the bytes every other run must
	// reproduce.
	step("reference build (uninterrupted)")
	ref := filepath.Join(dir, "ref.gob")
	if out, err := runGendata(bin, nil, append(common, "-out", ref)...); err != nil {
		return fmt.Errorf("reference build: %v\n%s", err, out)
	}
	want, err := sha256File(ref)
	if err != nil {
		return err
	}

	// 2. Journaled build, SIGKILLed mid-flight. The stall fault slows
	// every matrix by 25ms (workers pinned to 2 → ~200ms per shard) so
	// the kill reliably lands while most shards are still pending.
	step("journaled build, SIGKILL after >= 2 shards")
	var killOut strings.Builder
	kill := exec.Command(bin, append(append([]string{}, common...),
		"-journal", journal, "-workers", "2", "-out", filepath.Join(dir, "killed.gob"))...)
	kill.Stdout, kill.Stderr = &killOut, &killOut
	kill.Env = append(os.Environ(), "GENDATA_FAULT_INJECT=dataset.label.stall@25ms")
	if err := kill.Start(); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- kill.Wait() }()
	deadline := time.Now().Add(60 * time.Second)
	for {
		shards, _ := filepath.Glob(filepath.Join(journal, "shard-*.bin"))
		if len(shards) >= 2 {
			break
		}
		select {
		case err := <-exited:
			return fmt.Errorf("build exited (%v) before it could be killed; increase the stall delay\n%s", err, killOut.String())
		default:
		}
		if time.Now().After(deadline) {
			kill.Process.Kill()
			<-exited
			return fmt.Errorf("no shards journaled within 60s (saw %d)\n%s", len(shards), killOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := kill.Process.Kill(); err != nil {
		return fmt.Errorf("kill -9: %v", err)
	}
	if err := <-exited; err == nil {
		return fmt.Errorf("killed build exited cleanly — the kill landed too late to mean anything")
	}
	shards, _ := filepath.Glob(filepath.Join(journal, "shard-*.bin"))
	fmt.Printf("gendrill: killed with %d shards journaled\n", len(shards))

	// 3. Resume. Must reuse the journaled shards and reproduce the
	// reference bytes exactly.
	step("resume after kill")
	resumed := filepath.Join(dir, "resumed.gob")
	out, err := runGendata(bin, nil, append(common, "-journal", journal, "-resume", "-out", resumed)...)
	if err != nil {
		return fmt.Errorf("resume: %v\n%s", err, out)
	}
	n, err := resumedShards(out)
	if err != nil {
		return fmt.Errorf("resume output unparsable: %v\n%s", err, out)
	}
	if n < 2 {
		return fmt.Errorf("resume reused %d shards, want >= 2 — it started over\n%s", n, out)
	}
	got, err := sha256File(resumed)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("resumed dataset is not byte-identical to the uninterrupted build (sha256 %x != %x)", got, want)
	}
	fmt.Printf("gendrill: resume reused %d shards, checksums match (%x)\n", n, want[:8])

	// 4. Quarantine: three injected per-matrix panics must not abort
	// the build, and must leave forensics in quarantine.jsonl.
	step("quarantine drill (3 injected label panics)")
	qjournal := filepath.Join(dir, "quarantine")
	out, err = runGendata(bin, []string{"GENDATA_FAULT_INJECT=dataset.label.panic:3"},
		append(common, "-journal", qjournal, "-out", filepath.Join(dir, "quarantined.gob"))...)
	if err != nil {
		return fmt.Errorf("quarantine build aborted: %v\n%s", err, out)
	}
	if !strings.Contains(out, "quarantined 3 matrices") {
		return fmt.Errorf("expected 'quarantined 3 matrices' in output:\n%s", out)
	}
	if !strings.Contains(out, "labelled 237 matrices") {
		return fmt.Errorf("expected the remaining 237 records to be labelled:\n%s", out)
	}
	qb, err := os.ReadFile(filepath.Join(qjournal, "quarantine.jsonl"))
	if err != nil {
		return fmt.Errorf("quarantine report: %v", err)
	}
	if lines := strings.Count(string(qb), "\n"); lines != 3 {
		return fmt.Errorf("quarantine.jsonl has %d entries, want 3", lines)
	}
	if !strings.Contains(string(qb), `"panic":true`) {
		return fmt.Errorf("quarantine.jsonl entries missing panic forensics: %s", qb)
	}
	if _, err := os.Stat(filepath.Join(qjournal, "report.jsonl")); err != nil {
		return fmt.Errorf("build report: %v", err)
	}
	return nil
}

func step(s string) { fmt.Println("gendrill:", s) }

// runGendata runs the built binary with extra environment and returns
// its combined output.
func runGendata(bin string, env []string, args ...string) (string, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

var resumedRE = regexp.MustCompile(`\((\d+) resumed`)

// resumedShards parses the build-report line gendata prints, e.g.
// "built 240/240 records in 30 shards (12 resumed, 0 healed, ...)".
func resumedShards(out string) (int, error) {
	m := resumedRE.FindStringSubmatch(out)
	if m == nil {
		return 0, fmt.Errorf("no build report line found")
	}
	return strconv.Atoi(m[1])
}

// sha256File is the drill's byte-identity check.
func sha256File(path string) ([32]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}
