#!/usr/bin/env bash
# CI gate: build everything, vet, run the serve smoke test (an
# end-to-end train→serve→predict pass over the real binaries), then run
# the full test suite with the race detector. SHORT=1 narrows the race
# run to the internal packages (skipping the slow experiment
# reproductions at the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

# The experiment reproductions take ~2 minutes without the race
# detector and several times that with it; the default 10m per-package
# timeout is too tight.
# Formatting gate: gofmt is the one true style; a non-empty file list
# fails the build with the offending paths.
unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Static analysis: staticcheck (bug-pattern lints beyond vet) and
# govulncheck (known-vulnerable call paths in the dependency graph),
# both version-pinned so CI cannot drift onto a lint set nobody
# reviewed. SHORT=1 skips — the short gate is the fast merge loop and
# these tools dominate its runtime on a cold cache. A missing tool is
# installed into GOPATH/bin when the network allows; an offline
# checkout logs a warning and continues, because a sandbox without
# egress must still be able to run the gate.
STATICCHECK_VERSION=v0.6.1
GOVULNCHECK_VERSION=v1.1.4
if [[ "${SHORT:-0}" != "1" ]]; then
    export PATH="$(go env GOPATH)/bin:$PATH"
    if ! command -v staticcheck >/dev/null 2>&1; then
        go install "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" || true
    fi
    if command -v staticcheck >/dev/null 2>&1; then
        staticcheck ./...
    else
        echo "warning: staticcheck unavailable (offline?), skipping" >&2
    fi
    if ! command -v govulncheck >/dev/null 2>&1; then
        go install "golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}" || true
    fi
    if command -v govulncheck >/dev/null 2>&1; then
        govulncheck ./...
    else
        echo "warning: govulncheck unavailable (offline?), skipping" >&2
    fi
fi

go run ./scripts/servesmoke

# Corpus crash drill: build with the real gendata binary, SIGKILL it
# mid-build, resume, and require the resumed dataset's checksum to
# match an uninterrupted run — plus the quarantine (poison-matrix)
# drill. See scripts/gendrill.
go run ./scripts/gendrill

# Streamed-corpus crash drill: SIGKILL a real `gendata -import-dir`
# bulk ingest mid-flight, resume it to a byte-identical sharded store,
# then corrupt shards and require train + experiments to complete on
# salvage (quarantine + salvage.json) instead of aborting. See
# scripts/corpusdrill.
go run ./scripts/corpusdrill

# Cluster chaos drill: router + three replicas + heavy-tailed load,
# SIGKILL one replica mid-run, require >= 99% success and router
# reconvergence after the victim restarts. See scripts/clusterdrill.
if [[ "${SHORT:-0}" == "1" ]]; then
    go run ./scripts/clusterdrill -short
else
    go run ./scripts/clusterdrill
fi

# Overload-control drill: router + two SLO-armed replicas, open-loop
# Poisson surge at 5x measured capacity; goodput must hold >= 70% of
# capacity with zero 5xx, brownout must engage under the surge and
# disengage within 10s of the load dropping. See scripts/overloaddrill.
if [[ "${SHORT:-0}" == "1" ]]; then
    go run ./scripts/overloaddrill -short
else
    go run ./scripts/overloaddrill
fi

# Continual-learning drill: serve + shepherd on real binaries, shifted
# traffic must trip the drift detector, a top-evolvement retrain must
# shadow and promote through the probe-validated hot reload, and a
# fault-injected corrupt candidate must be rejected while the live
# model keeps serving. See scripts/shepherddrill.
if [[ "${SHORT:-0}" == "1" ]]; then
    go run ./scripts/shepherddrill -short
else
    go run ./scripts/shepherddrill
fi

# Fuzz smoke: a short native-fuzzing budget per hardened ingestion
# surface. A clean run means no panic and no typed-error-taxonomy
# violation found within the budget; regressions crash the script.
go test -run='^$' -fuzz='^FuzzReadMatrixMarket$' -fuzztime=10s ./internal/sparse
go test -run='^$' -fuzz='^FuzzPredictJSON$' -fuzztime=10s ./internal/serve
go test -run='^$' -fuzz='^FuzzLoadDataset$' -fuzztime=10s ./internal/dataset

if [[ "${SHORT:-0}" == "1" ]]; then
    go test -race -timeout 45m ./internal/...
else
    go test -race -timeout 45m ./...
fi
