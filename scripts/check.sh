#!/usr/bin/env bash
# CI gate: build everything, vet, run the serve smoke test (an
# end-to-end train→serve→predict pass over the real binaries), then run
# the full test suite with the race detector. SHORT=1 narrows the race
# run to the internal packages (skipping the slow experiment
# reproductions at the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

# The experiment reproductions take ~2 minutes without the race
# detector and several times that with it; the default 10m per-package
# timeout is too tight.
go build ./...
go vet ./...
go run ./scripts/servesmoke
if [[ "${SHORT:-0}" == "1" ]]; then
    go test -race -timeout 45m ./internal/...
else
    go test -race -timeout 45m ./...
fi
