// Command benchgate compares a fresh BENCH.json against the committed
// BENCH_baseline.json and fails when a guarded hot-path benchmark has
// regressed beyond the threshold.
//
//	go run ./scripts/benchgate -baseline BENCH_baseline.json -current BENCH.json
//
// Only the guarded set is gated — the SpMV kernels, dense MatMul,
// representation construction, the float32 inference engine, and the
// serve predict path — because micro-noise on the heavyweight
// experiment reproductions would make a blanket gate flaky. Every
// guarded benchmark is gated on BOTH axes: ns/op against -threshold
// and allocs/op against -alloc-threshold. Allocations are counted, not
// sampled, so the alloc gate is far tighter than the timing gate; in
// particular a baseline of 0 allocs/op is a hard contract — any
// current value above zero fails regardless of threshold, because
// "allocation-free" is a property, not a quantity.
//
// Missing data is an error, never a silent pass: a guarded benchmark
// present in the baseline but absent from the current run fails (a
// silently deleted benchmark is a silently dropped guarantee); a
// guarded benchmark whose baseline or current entry lacks the
// allocs_per_op column fails (run with -benchmem, or regenerate the
// baseline); and a guarded pattern that matches nothing in the
// baseline at all is a setup error (exit 2) — it means a benchmark
// family was renamed out from under its gate. New benchmarks absent
// from the baseline only produce a note. With -advisory the gate
// prints its verdict but always exits 0, which is how CI runs it on
// pull requests before the blocking run on the main branch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

type doc struct {
	Benchmarks map[string]result `json:"benchmarks"`
}

// guarded names the hot paths whose latency and allocation behaviour
// are a contract. Keys are regexps over "<import path>/Benchmark<name>"
// as written by benchjson. The parallel SpMV variants are deliberately
// ungated: their timings fold in goroutine scheduling on however many
// cores the runner has, which is noise about the machine, not the
// kernel.
var guarded = []*regexp.Regexp{
	regexp.MustCompile(`^repro/internal/spmv/BenchmarkKernelMul/`),
	regexp.MustCompile(`^repro/internal/tensor/BenchmarkMatMul`),
	regexp.MustCompile(`^repro/internal/represent/BenchmarkNormalize`),
	regexp.MustCompile(`^repro/internal/serve/BenchmarkPredict`),
	regexp.MustCompile(`^repro/internal/nn/BenchmarkInfer32Predict`),
}

// allocOnly names benchmarks whose allocs/op is the contract while
// their latency stays ungated. The streaming shard iterator is gated
// this way: its promise is bounded memory per shard, and an accidental
// whole-store materialisation is an alloc explosion well before it is
// a latency regression — but its wall-clock folds in disk cache state,
// which is noise about the runner.
var allocOnly = []*regexp.Regexp{
	regexp.MustCompile(`^repro/internal/dataset/BenchmarkShardIter`),
}

func matchAny(res []*regexp.Regexp, key string) bool {
	for _, re := range res {
		if re.MatchString(key) {
			return true
		}
	}
	return false
}

func load(path string) (doc, error) {
	var d doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %v", path, err)
	}
	if len(d.Benchmarks) == 0 {
		return d, fmt.Errorf("%s: no benchmarks", path)
	}
	return d, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline")
	current := flag.String("current", "BENCH.json", "fresh benchmark run")
	threshold := flag.Float64("threshold", 0.25, "max allowed ns/op regression ratio")
	allocThreshold := flag.Float64("alloc-threshold", 0.10, "max allowed allocs/op regression ratio")
	allocSlack := flag.Float64("alloc-slack", 2, "absolute allocs/op growth always tolerated (small-count jitter); never applies to a zero baseline")
	advisory := flag.Bool("advisory", false, "report but always exit 0")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	// Every guarded pattern must cover at least one baseline benchmark;
	// a pattern matching nothing means the benchmark it was written for
	// no longer exists under that name, and the gate it implies has
	// quietly evaporated.
	for _, re := range append(append([]*regexp.Regexp{}, guarded...), allocOnly...) {
		found := false
		for k := range base.Benchmarks {
			if re.MatchString(k) {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "benchgate: guarded pattern %q matches no baseline benchmark — renamed or deleted?\n", re)
			os.Exit(2)
		}
	}

	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failures := 0
	checked := 0
	for _, k := range keys {
		timed, allocd := matchAny(guarded, k), matchAny(allocOnly, k)
		if !timed && !allocd {
			continue
		}
		b := base.Benchmarks[k]
		c, ok := cur.Benchmarks[k]
		if !ok {
			fmt.Printf("FAIL  %-60s guarded benchmark missing from current run\n", k)
			failures++
			continue
		}
		if timed {
			checked++
			ratio := c.NsPerOp/b.NsPerOp - 1
			verdict := "ok  "
			if ratio > *threshold {
				verdict = "FAIL"
				failures++
			}
			fmt.Printf("%s  %-60s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
				verdict, k, b.NsPerOp, c.NsPerOp, 100*ratio)
		}
		// Every guarded benchmark is alloc-gated; allocOnly entries are
		// gated on nothing else.
		checked++
		switch {
		case b.AllocsPerOp == nil:
			fmt.Printf("FAIL  %-60s baseline lacks allocs/op (regenerate BENCH_baseline.json with -benchmem)\n", k)
			failures++
		case c.AllocsPerOp == nil:
			fmt.Printf("FAIL  %-60s current run lacks allocs/op (run with -benchmem or ReportAllocs)\n", k)
			failures++
		case *b.AllocsPerOp == 0:
			// Allocation-free is a property: the gate admits no slack.
			verdict := "ok  "
			if *c.AllocsPerOp != 0 {
				verdict = "FAIL"
				failures++
			}
			fmt.Printf("%s  %-60s %12.0f -> %12.0f allocs/op  (zero-alloc contract)\n",
				verdict, k, *b.AllocsPerOp, *c.AllocsPerOp)
		default:
			ratio := *c.AllocsPerOp / *b.AllocsPerOp - 1
			delta := *c.AllocsPerOp - *b.AllocsPerOp
			verdict := "ok  "
			if ratio > *allocThreshold && delta > *allocSlack {
				verdict = "FAIL"
				failures++
			}
			fmt.Printf("%s  %-60s %12.0f -> %12.0f allocs/op  (%+.1f%%)\n",
				verdict, k, *b.AllocsPerOp, *c.AllocsPerOp, 100*ratio)
		}
	}
	for k := range cur.Benchmarks {
		if matchAny(guarded, k) || matchAny(allocOnly, k) {
			if _, ok := base.Benchmarks[k]; !ok {
				fmt.Printf("note  %-60s new guarded benchmark, not in baseline\n", k)
			}
		}
	}

	if checked == 0 && failures == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: baseline contains no guarded benchmarks")
		os.Exit(2)
	}
	switch {
	case failures == 0:
		fmt.Printf("benchgate: %d guarded checks within ns/op %.0f%% and allocs/op %.0f%%\n",
			checked, 100**threshold, 100**allocThreshold)
	case *advisory:
		fmt.Printf("benchgate: %d regression(s) (advisory mode, not failing)\n", failures)
	default:
		fmt.Printf("benchgate: %d regression(s)\n", failures)
		os.Exit(1)
	}
}
