// Command benchgate compares a fresh BENCH.json against the committed
// BENCH_baseline.json and fails when a guarded hot-path benchmark has
// regressed beyond the threshold.
//
//	go run ./scripts/benchgate -baseline BENCH_baseline.json -current BENCH.json
//
// Only the guarded set is gated — the SpMV kernels, dense MatMul,
// representation construction, and the serve predict path — because
// micro-noise on the heavyweight experiment reproductions would make a
// blanket gate flaky. A guarded benchmark present in the baseline but
// missing from the current run is an error (a silently deleted
// benchmark is a silently dropped guarantee); new benchmarks absent
// from the baseline only produce a note. With -advisory the gate
// prints its verdict but always exits 0, which is how CI runs it on
// pull requests before the blocking run on the main branch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

type doc struct {
	Benchmarks map[string]result `json:"benchmarks"`
}

// guarded names the hot paths whose latency is a contract. Keys are
// regexps over "<import path>/Benchmark<name>" as written by benchjson.
// The parallel SpMV variants are deliberately ungated: their timings
// fold in goroutine scheduling on however many cores the runner has,
// which is noise about the machine, not the kernel.
var guarded = []*regexp.Regexp{
	regexp.MustCompile(`^repro/internal/spmv/BenchmarkKernelMul/`),
	regexp.MustCompile(`^repro/internal/tensor/BenchmarkMatMul`),
	regexp.MustCompile(`^repro/internal/represent/BenchmarkNormalize`),
	regexp.MustCompile(`^repro/internal/serve/BenchmarkPredict`),
}

// allocGuarded names benchmarks whose allocs/op is the contract rather
// than their latency. The streaming shard iterator is gated this way:
// its promise is bounded memory per shard, and an accidental
// whole-store materialisation is an alloc explosion well before it is
// a latency regression — and allocs/op is deterministic, so the gate
// can be much tighter than a timing gate.
var allocGuarded = []*regexp.Regexp{
	regexp.MustCompile(`^repro/internal/dataset/BenchmarkShardIter`),
}

func isGuarded(key string) bool {
	for _, re := range guarded {
		if re.MatchString(key) {
			return true
		}
	}
	return false
}

func isAllocGuarded(key string) bool {
	for _, re := range allocGuarded {
		if re.MatchString(key) {
			return true
		}
	}
	return false
}

func load(path string) (doc, error) {
	var d doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %v", path, err)
	}
	if len(d.Benchmarks) == 0 {
		return d, fmt.Errorf("%s: no benchmarks", path)
	}
	return d, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline")
	current := flag.String("current", "BENCH.json", "fresh benchmark run")
	threshold := flag.Float64("threshold", 0.25, "max allowed ns/op regression ratio")
	allocThreshold := flag.Float64("alloc-threshold", 0.10, "max allowed allocs/op regression ratio")
	advisory := flag.Bool("advisory", false, "report but always exit 0")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failures := 0
	checked := 0
	for _, k := range keys {
		timed, allocd := isGuarded(k), isAllocGuarded(k)
		if !timed && !allocd {
			continue
		}
		b := base.Benchmarks[k]
		c, ok := cur.Benchmarks[k]
		if !ok {
			fmt.Printf("FAIL  %-60s guarded benchmark missing from current run\n", k)
			failures++
			continue
		}
		if timed {
			checked++
			ratio := c.NsPerOp/b.NsPerOp - 1
			verdict := "ok  "
			if ratio > *threshold {
				verdict = "FAIL"
				failures++
			}
			fmt.Printf("%s  %-60s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
				verdict, k, b.NsPerOp, c.NsPerOp, 100*ratio)
		}
		if allocd {
			if b.AllocsPerOp == 0 || c.AllocsPerOp == 0 {
				fmt.Printf("FAIL  %-60s allocs/op missing (run the benchmark with -benchmem or ReportAllocs)\n", k)
				failures++
				continue
			}
			checked++
			ratio := c.AllocsPerOp/b.AllocsPerOp - 1
			verdict := "ok  "
			if ratio > *allocThreshold {
				verdict = "FAIL"
				failures++
			}
			fmt.Printf("%s  %-60s %12.0f -> %12.0f allocs/op  (%+.1f%%)\n",
				verdict, k, b.AllocsPerOp, c.AllocsPerOp, 100*ratio)
		}
	}
	for k := range cur.Benchmarks {
		if isGuarded(k) || isAllocGuarded(k) {
			if _, ok := base.Benchmarks[k]; !ok {
				fmt.Printf("note  %-60s new guarded benchmark, not in baseline\n", k)
			}
		}
	}

	if checked == 0 && failures == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: baseline contains no guarded benchmarks")
		os.Exit(2)
	}
	switch {
	case failures == 0:
		fmt.Printf("benchgate: %d guarded benchmarks within %.0f%%\n", checked, 100**threshold)
	case *advisory:
		fmt.Printf("benchgate: %d regression(s) beyond %.0f%% (advisory mode, not failing)\n",
			failures, 100**threshold)
	default:
		fmt.Printf("benchgate: %d regression(s) beyond %.0f%%\n", failures, 100**threshold)
		os.Exit(1)
	}
}
